use std::fmt;

use crate::error::SolverError;

/// Identifier of a decision variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

impl VarId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

/// Whether a variable is continuous or must take integer values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (branch-and-bound enforces this).
    Integer,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Variable {
    pub(crate) lb: f64,
    pub(crate) ub: f64, // may be +inf
    pub(crate) objective: f64,
    pub(crate) kind: VarKind,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Constraint {
    /// Sparse row: (variable, coefficient) pairs with distinct variables.
    pub(crate) terms: Vec<(VarId, f64)>,
    pub(crate) cmp: Cmp,
    pub(crate) rhs: f64,
}

/// A linear (or mixed-integer linear) optimization model.
///
/// Variables carry finite lower bounds (default 0) and optional upper
/// bounds, both enforced *structurally* by the bounded-variable simplex —
/// an upper bound does not consume a constraint row, which keeps the
/// VNF-placement ILPs compact (`X_i ≤ 1` and `Y_ij ≤ 1` are bounds, not
/// rows).
///
/// # Example
///
/// ```
/// # use lp_solver::{Model, Sense, Cmp};
/// # fn main() -> Result<(), lp_solver::SolverError> {
/// // maximize 3x + 2y  s.t.  x + y ≤ 4,  x ≤ 2,  y ≤ 3
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.add_var(0.0, Some(2.0), 3.0)?;
/// let y = m.add_var(0.0, Some(3.0), 2.0)?;
/// m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0)?;
/// let sol = lp_solver::solve_lp(&m)?.expect_optimal();
/// assert!((sol.objective - 10.0).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a continuous variable with bounds `[lb, ub]` (use `None` for
    /// `ub = +∞`) and the given objective coefficient.
    ///
    /// # Errors
    ///
    /// * [`SolverError::NonFiniteValue`] if `lb` or the objective
    ///   coefficient is not finite, or `ub` is NaN / `-∞`.
    /// * [`SolverError::InvertedBounds`] if `lb > ub`.
    pub fn add_var(
        &mut self,
        lb: f64,
        ub: Option<f64>,
        objective: f64,
    ) -> Result<VarId, SolverError> {
        self.add_var_kind(lb, ub, objective, VarKind::Continuous)
    }

    /// Adds an integer variable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::add_var`].
    pub fn add_integer_var(
        &mut self,
        lb: f64,
        ub: Option<f64>,
        objective: f64,
    ) -> Result<VarId, SolverError> {
        self.add_var_kind(lb, ub, objective, VarKind::Integer)
    }

    /// Adds a binary (0/1 integer) variable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::add_var`].
    pub fn add_binary_var(&mut self, objective: f64) -> Result<VarId, SolverError> {
        self.add_var_kind(0.0, Some(1.0), objective, VarKind::Integer)
    }

    fn add_var_kind(
        &mut self,
        lb: f64,
        ub: Option<f64>,
        objective: f64,
        kind: VarKind,
    ) -> Result<VarId, SolverError> {
        if !lb.is_finite() {
            return Err(SolverError::NonFiniteValue("lower bound"));
        }
        if !objective.is_finite() {
            return Err(SolverError::NonFiniteValue("objective coefficient"));
        }
        let ub = match ub {
            Some(u) if u.is_nan() || u == f64::NEG_INFINITY => {
                return Err(SolverError::NonFiniteValue("upper bound"))
            }
            Some(u) => u,
            None => f64::INFINITY,
        };
        if lb > ub {
            return Err(SolverError::InvertedBounds {
                var: self.vars.len(),
                lb,
                ub,
            });
        }
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            lb,
            ub,
            objective,
            kind,
        });
        Ok(id)
    }

    /// Adds a linear constraint `Σ coefᵢ·xᵢ  cmp  rhs`.
    ///
    /// Repeated variables in `terms` are summed.
    ///
    /// # Errors
    ///
    /// * [`SolverError::UnknownVariable`] for an out-of-range variable.
    /// * [`SolverError::NonFiniteValue`] for NaN/∞ coefficients or rhs.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        cmp: Cmp,
        rhs: f64,
    ) -> Result<(), SolverError> {
        if !rhs.is_finite() {
            return Err(SolverError::NonFiniteValue("rhs"));
        }
        // Merge duplicates while validating.
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            if v.index() >= self.vars.len() {
                return Err(SolverError::UnknownVariable(v.index()));
            }
            if !c.is_finite() {
                return Err(SolverError::NonFiniteValue("constraint coefficient"));
            }
            match merged.iter_mut().find(|(w, _)| *w == v) {
                Some((_, acc)) => *acc += c,
                None => merged.push((v, c)),
            }
        }
        self.constraints.push(Constraint {
            terms: merged,
            cmp,
            rhs,
        });
        Ok(())
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Lower and upper bound of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        let var = &self.vars[v.index()];
        (var.lb, var.ub)
    }

    /// Objective coefficient of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn objective_coefficient(&self, v: VarId) -> f64 {
        self.vars[v.index()].objective
    }

    /// Whether the variable is integer-constrained.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn is_integer(&self, v: VarId) -> bool {
        self.vars[v.index()].kind == VarKind::Integer
    }

    /// Ids of all integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Overrides the bounds of a variable (used by branch-and-bound).
    ///
    /// # Errors
    ///
    /// Same validation as [`Model::add_var`].
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) -> Result<(), SolverError> {
        if v.index() >= self.vars.len() {
            return Err(SolverError::UnknownVariable(v.index()));
        }
        if !lb.is_finite() {
            return Err(SolverError::NonFiniteValue("lower bound"));
        }
        if ub.is_nan() || ub == f64::NEG_INFINITY {
            return Err(SolverError::NonFiniteValue("upper bound"));
        }
        if lb > ub {
            return Err(SolverError::InvertedBounds {
                var: v.index(),
                lb,
                ub,
            });
        }
        self.vars[v.index()].lb = lb;
        self.vars[v.index()].ub = ub;
        Ok(())
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars
            .iter()
            .zip(x)
            .map(|(v, &xi)| v.objective * xi)
            .sum()
    }

    /// Checks whether `x` satisfies all constraints and bounds within
    /// tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lb - tol || xi > v.ub + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * x[v.index()]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
                Cmp::Ge => lhs >= c.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_validation() {
        let mut m = Model::new(Sense::Maximize);
        assert!(m.add_var(f64::NEG_INFINITY, None, 1.0).is_err());
        assert!(m.add_var(0.0, Some(f64::NAN), 1.0).is_err());
        assert!(m.add_var(0.0, None, f64::INFINITY).is_err());
        assert!(matches!(
            m.add_var(2.0, Some(1.0), 0.0),
            Err(SolverError::InvertedBounds { .. })
        ));
        let v = m.add_var(1.0, Some(3.0), 2.0).unwrap();
        assert_eq!(m.bounds(v), (1.0, 3.0));
        assert_eq!(m.objective_coefficient(v), 2.0);
        assert!(!m.is_integer(v));
    }

    #[test]
    fn binary_and_integer_vars() {
        let mut m = Model::new(Sense::Maximize);
        let b = m.add_binary_var(1.0).unwrap();
        let i = m.add_integer_var(0.0, Some(9.0), 1.0).unwrap();
        let c = m.add_var(0.0, None, 1.0).unwrap();
        assert!(m.is_integer(b));
        assert!(m.is_integer(i));
        assert!(!m.is_integer(c));
        assert_eq!(m.bounds(b), (0.0, 1.0));
        assert_eq!(m.integer_vars(), vec![b, i]);
    }

    #[test]
    fn constraint_merges_duplicates() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, None, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (x, 2.0)], Cmp::Le, 5.0)
            .unwrap();
        assert_eq!(m.constraints[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn constraint_validation() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, None, 1.0).unwrap();
        assert!(m
            .add_constraint(vec![(VarId(5), 1.0)], Cmp::Le, 1.0)
            .is_err());
        assert!(m.add_constraint(vec![(x, f64::NAN)], Cmp::Le, 1.0).is_err());
        assert!(m
            .add_constraint(vec![(x, 1.0)], Cmp::Le, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, Some(2.0), 1.0).unwrap();
        let y = m.add_var(0.0, None, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 3.0)
            .unwrap();
        m.add_constraint(vec![(y, 1.0)], Cmp::Ge, 1.0).unwrap();
        assert!(m.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 2.5], 1e-9)); // violates Le
        assert!(!m.is_feasible(&[2.5, 0.5], 1e-9)); // violates ub
        assert!(!m.is_feasible(&[1.0, 0.5], 1e-9)); // violates Ge
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong arity
        assert_eq!(m.objective_value(&[1.0, 2.0]), 3.0);
    }

    #[test]
    fn set_bounds_for_branching() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_var(1.0).unwrap();
        m.set_bounds(x, 1.0, 1.0).unwrap();
        assert_eq!(m.bounds(x), (1.0, 1.0));
        assert!(m.set_bounds(x, 2.0, 1.0).is_err());
        assert!(m.set_bounds(VarId(9), 0.0, 1.0).is_err());
    }
}
