//! Best-first branch-and-bound for mixed-integer linear programs.
//!
//! Each node re-solves the LP relaxation with tightened variable bounds
//! (bounds are structural in the simplex, so branching adds no rows).
//! Nodes are explored best-bound-first; a node and time budget turn the
//! solver into an anytime algorithm that reports the best incumbent and
//! the remaining optimality gap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::error::SolverError;
use crate::model::{Model, Sense, VarId};
use crate::simplex::{solve_lp, LpOutcome};

/// Integrality tolerance: values within this of an integer count as
/// integral.
const INT_TOL: f64 = 1e-6;

/// Budget limits for branch-and-bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnbConfig {
    /// Maximum number of LP relaxations to solve.
    pub max_nodes: usize,
    /// Wall-clock budget.
    pub time_limit: Duration,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 200_000,
            time_limit: Duration::from_secs(60),
        }
    }
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone, PartialEq)]
pub enum MipOutcome {
    /// Proven optimal integer solution.
    Optimal(MipSolution),
    /// Budget exhausted with a feasible incumbent; `bound` brackets the
    /// optimum (`bound ≥ objective` for maximization).
    Feasible(MipSolution),
    /// No integer-feasible point exists.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// Budget exhausted before any incumbent was found; `bound` is still a
    /// valid dual bound on the optimum.
    NoIncumbent {
        /// Dual bound on the unknown optimum.
        bound: f64,
    },
}

impl MipOutcome {
    /// Unwraps a solution from `Optimal` or `Feasible`.
    ///
    /// # Panics
    ///
    /// Panics on the other variants.
    pub fn expect_solution(self) -> MipSolution {
        match self {
            MipOutcome::Optimal(s) | MipOutcome::Feasible(s) => s,
            other => panic!("expected a MIP solution, got {other:?}"),
        }
    }

    /// Borrows the solution carried by `Optimal` or `Feasible`.
    pub fn solution(&self) -> Option<&MipSolution> {
        match self {
            MipOutcome::Optimal(s) | MipOutcome::Feasible(s) => Some(s),
            _ => None,
        }
    }
}

/// An integer-feasible solution plus the best dual bound proven so far.
#[derive(Debug, Clone, PartialEq)]
pub struct MipSolution {
    /// Objective value of the incumbent.
    pub objective: f64,
    /// Variable values (integer variables are integral within tolerance).
    pub values: Vec<f64>,
    /// Dual bound: the optimum cannot be better than this.
    pub bound: f64,
    /// Number of LP relaxations solved.
    pub nodes: usize,
}

impl MipSolution {
    /// Relative optimality gap `|bound − objective| / max(1, |objective|)`.
    pub fn gap(&self) -> f64 {
        (self.bound - self.objective).abs() / self.objective.abs().max(1.0)
    }
}

struct Node {
    /// LP bound of the parent (priority key).
    bound: f64,
    /// Bound overrides accumulated along the branching path.
    overrides: Vec<(VarId, f64, f64)>,
    /// Larger-is-better priority for maximization, flipped for min.
    better: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.better == other.better
    }
}
impl Eq for Node {}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.better
            .partial_cmp(&other.better)
            .unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Solves a mixed-integer program by branch-and-bound.
///
/// # Errors
///
/// Propagates simplex errors ([`SolverError::EmptyModel`],
/// [`SolverError::IterationLimit`]). Infeasibility/unboundedness are
/// reported through [`MipOutcome`].
pub fn solve_mip(model: &Model, config: &BnbConfig) -> Result<MipOutcome, SolverError> {
    let start = Instant::now();
    let maximize = model.sense() == Sense::Maximize;
    let int_vars = model.integer_vars();

    // Root relaxation.
    let root = solve_lp(model)?;
    let root_sol = match root {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => return Ok(MipOutcome::Infeasible),
        LpOutcome::Unbounded => return Ok(MipOutcome::Unbounded),
    };
    let mut nodes_solved = 1usize;

    // Fast path: relaxation already integral.
    if fractional_var(&root_sol.values, &int_vars).is_none() {
        return Ok(MipOutcome::Optimal(MipSolution {
            objective: root_sol.objective,
            values: root_sol.values,
            bound: root_sol.objective,
            nodes: nodes_solved,
        }));
    }

    let better_key = |obj: f64| if maximize { obj } else { -obj };
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root_sol.objective,
        overrides: Vec::new(),
        better: better_key(root_sol.objective),
    });

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let is_better = |a: f64, b: f64| if maximize { a > b + 1e-9 } else { a < b - 1e-9 };
    // The global dual bound is the best bound among open nodes.
    let mut best_open_bound = root_sol.objective;

    let mut scratch = model.clone();
    while let Some(node) = heap.pop() {
        best_open_bound = node.bound;
        // Prune against the incumbent.
        if let Some((inc_obj, _)) = &incumbent {
            if !is_better(node.bound, *inc_obj) {
                // Best-first order ⇒ every remaining node is no better.
                best_open_bound = *inc_obj;
                break;
            }
        }
        if nodes_solved >= config.max_nodes || start.elapsed() >= config.time_limit {
            break;
        }

        // Apply this node's bound overrides to the scratch model.
        restore_bounds(&mut scratch, model);
        let mut valid = true;
        for &(v, lb, ub) in &node.overrides {
            if lb > ub || scratch.set_bounds(v, lb, ub).is_err() {
                valid = false;
                break;
            }
        }
        if !valid {
            continue;
        }

        let outcome = solve_lp(&scratch)?;
        nodes_solved += 1;
        let sol = match outcome {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            // Child LPs only tighten bounds; unboundedness cannot appear
            // below a bounded root, but handle it defensively.
            LpOutcome::Unbounded => return Ok(MipOutcome::Unbounded),
        };
        if let Some((inc_obj, _)) = &incumbent {
            if !is_better(sol.objective, *inc_obj) {
                continue; // dominated subtree
            }
        }

        match fractional_var(&sol.values, &int_vars) {
            None => {
                // Integral: new incumbent.
                let rounded = round_integral(&sol.values, &int_vars);
                let obj = model.objective_value(&rounded);
                match &incumbent {
                    Some((best, _)) if !is_better(obj, *best) => {}
                    _ => incumbent = Some((obj, rounded)),
                }
            }
            Some((v, x)) => {
                let floor = x.floor();
                let (lb, ub) = model.bounds(v);
                // Down child: v ≤ floor(x).
                let mut down = node.overrides.clone();
                down.push((v, lb_override(&node.overrides, v, lb), floor));
                heap.push(Node {
                    bound: sol.objective,
                    overrides: down,
                    better: better_key(sol.objective),
                });
                // Up child: v ≥ ceil(x).
                let mut up = node.overrides.clone();
                up.push((v, floor + 1.0, ub_override(&node.overrides, v, ub)));
                heap.push(Node {
                    bound: sol.objective,
                    overrides: up,
                    better: better_key(sol.objective),
                });
            }
        }
    }

    let final_bound = match (&incumbent, heap.peek()) {
        (_, Some(top)) => top.bound,
        (Some((obj, _)), None) => *obj,
        (None, None) => best_open_bound,
    };

    match incumbent {
        Some((objective, values)) => {
            let exhausted = heap
                .peek()
                .is_none_or(|top| !is_better(top.bound, objective));
            let sol = MipSolution {
                objective,
                values,
                bound: if exhausted { objective } else { final_bound },
                nodes: nodes_solved,
            };
            if exhausted {
                Ok(MipOutcome::Optimal(sol))
            } else {
                Ok(MipOutcome::Feasible(sol))
            }
        }
        None => Ok(MipOutcome::NoIncumbent { bound: final_bound }),
    }
}

/// Latest branching lower bound for `v`, else the model default.
fn lb_override(overrides: &[(VarId, f64, f64)], v: VarId, default: f64) -> f64 {
    overrides
        .iter()
        .rev()
        .find(|(w, _, _)| *w == v)
        .map(|&(_, lb, _)| lb)
        .unwrap_or(default)
}

/// Latest branching upper bound for `v`, else the model default.
fn ub_override(overrides: &[(VarId, f64, f64)], v: VarId, default: f64) -> f64 {
    overrides
        .iter()
        .rev()
        .find(|(w, _, _)| *w == v)
        .map(|&(_, _, ub)| ub)
        .unwrap_or(default)
}

fn restore_bounds(scratch: &mut Model, original: &Model) {
    for i in 0..original.num_vars() {
        let v = VarId(i);
        let (lb, ub) = original.bounds(v);
        scratch
            .set_bounds(v, lb, ub)
            .expect("original bounds are valid");
    }
}

/// Most fractional integer variable, if any.
fn fractional_var(values: &[f64], int_vars: &[VarId]) -> Option<(VarId, f64)> {
    let mut best: Option<(VarId, f64, f64)> = None; // (var, value, dist to .5)
    for &v in int_vars {
        let x = values[v.index()];
        let frac = x - x.floor();
        if frac > INT_TOL && frac < 1.0 - INT_TOL {
            let score = (frac - 0.5).abs();
            match best {
                Some((_, _, s)) if s <= score => {}
                _ => best = Some((v, x, score)),
            }
        }
    }
    best.map(|(v, x, _)| (v, x))
}

fn round_integral(values: &[f64], int_vars: &[VarId]) -> Vec<f64> {
    let mut out = values.to_vec();
    for &v in int_vars {
        out[v.index()] = out[v.index()].round();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    fn config() -> BnbConfig {
        BnbConfig::default()
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c, 3a + 4b + 2c ≤ 6, binary → a+c (17) vs b+c (20).
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary_var(10.0).unwrap();
        let b = m.add_binary_var(13.0).unwrap();
        let c = m.add_binary_var(7.0).unwrap();
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0)
            .unwrap();
        let sol = solve_mip(&m, &config()).unwrap().expect_solution();
        assert!((sol.objective - 20.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
        assert!((sol.values[2] - 1.0).abs() < 1e-6);
        assert!(sol.gap() < 1e-9);
    }

    #[test]
    fn integral_relaxation_short_circuits() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer_var(0.0, Some(5.0), 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0).unwrap();
        let out = solve_mip(&m, &config()).unwrap();
        let sol = match out {
            MipOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        };
        assert_eq!(sol.nodes, 1);
        assert!((sol.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn fractional_lp_integer_opt_differs() {
        // max x + y, 2x + 2y ≤ 3, binary: LP opt 1.5, ILP opt 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_var(1.0).unwrap();
        let y = m.add_binary_var(1.0).unwrap();
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Le, 3.0)
            .unwrap();
        let sol = solve_mip(&m, &config()).unwrap().expect_solution();
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_var(1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0).unwrap();
        assert_eq!(solve_mip(&m, &config()).unwrap(), MipOutcome::Infeasible);
    }

    #[test]
    fn integer_infeasible_but_lp_feasible() {
        // 0.4 ≤ x ≤ 0.6 with x integer: LP feasible, no integer point.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer_var(0.0, Some(1.0), 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 0.4).unwrap();
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.6).unwrap();
        let out = solve_mip(&m, &config()).unwrap();
        match out {
            MipOutcome::NoIncumbent { .. } | MipOutcome::Infeasible => {}
            other => panic!("expected no integer solution, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_mip() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_integer_var(0.0, None, 1.0).unwrap();
        assert_eq!(solve_mip(&m, &config()).unwrap(), MipOutcome::Unbounded);
    }

    #[test]
    fn minimization_mip() {
        // min 3x + 2y s.t. x + y ≥ 1.5, binary → x=1,y=1 (5) vs ... y=1,x=1
        // only combo ≥ 1.5 is both = 2 ≥ 1.5 → obj 5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary_var(3.0).unwrap();
        let y = m.add_binary_var(2.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.5)
            .unwrap();
        let sol = solve_mip(&m, &config()).unwrap().expect_solution();
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn node_budget_yields_feasible_or_bound() {
        // A 12-item knapsack with a tiny node budget.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary_var(((i * 7) % 11 + 1) as f64).unwrap())
            .collect();
        let terms = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 3) % 5 + 1) as f64))
            .collect();
        m.add_constraint(terms, Cmp::Le, 11.0).unwrap();
        let tight = BnbConfig {
            max_nodes: 3,
            time_limit: Duration::from_secs(10),
        };
        match solve_mip(&m, &tight).unwrap() {
            MipOutcome::Optimal(s) | MipOutcome::Feasible(s) => {
                assert!(s.bound + 1e-6 >= s.objective);
            }
            MipOutcome::NoIncumbent { bound } => assert!(bound > 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y with x binary, 0 ≤ y ≤ 10 continuous, x + y ≤ 3.5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_var(2.0).unwrap();
        let y = m.add_var(0.0, Some(10.0), 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 3.5)
            .unwrap();
        let sol = solve_mip(&m, &config()).unwrap().expect_solution();
        // x=1, y=2.5 → 4.5.
        assert!((sol.objective - 4.5).abs() < 1e-6);
        assert!((sol.values[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constrained_assignment() {
        // Assign each of 2 jobs to exactly one of 2 machines, machine 0
        // fits only one job.
        let mut m = Model::new(Sense::Maximize);
        let y00 = m.add_binary_var(5.0).unwrap();
        let y01 = m.add_binary_var(3.0).unwrap();
        let y10 = m.add_binary_var(4.0).unwrap();
        let y11 = m.add_binary_var(1.0).unwrap();
        m.add_constraint(vec![(y00, 1.0), (y01, 1.0)], Cmp::Eq, 1.0)
            .unwrap();
        m.add_constraint(vec![(y10, 1.0), (y11, 1.0)], Cmp::Eq, 1.0)
            .unwrap();
        m.add_constraint(vec![(y00, 1.0), (y10, 1.0)], Cmp::Le, 1.0)
            .unwrap();
        let sol = solve_mip(&m, &config()).unwrap().expect_solution();
        // Best: y00 + y11 = 6 or y01 + y10 = 7 → 7.
        assert!((sol.objective - 7.0).abs() < 1e-6, "obj {}", sol.objective);
    }
}
