//! Property-based validation of the simplex and branch-and-bound solvers
//! against brute-force references on randomly generated models.

use lp_solver::{solve_lp, solve_mip, BnbConfig, Cmp, LpOutcome, MipOutcome, Model, Sense};
use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a random binary maximization model: n binary vars, k ≤-rows with
/// non-negative coefficients (a packing problem, always feasible at 0).
fn random_packing(seed: u64, n: usize, k: usize) -> Model {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|_| m.add_binary_var(rng.gen_range(1.0..20.0)).unwrap())
        .collect();
    for _ in 0..k {
        let terms: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(0.0..5.0))).collect();
        let total: f64 = terms.iter().map(|(_, c)| c).sum();
        // rhs between 20% and 80% of the total weight keeps it interesting.
        let rhs = total * rng.gen_range(0.2..0.8);
        m.add_constraint(terms, Cmp::Le, rhs).unwrap();
    }
    m
}

/// Exhaustive 2^n search for the optimal binary assignment.
fn brute_force_binary(m: &Model) -> Option<(f64, Vec<f64>)> {
    let n = m.num_vars();
    assert!(n <= 20);
    let mut best: Option<(f64, Vec<f64>)> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        if m.is_feasible(&x, 1e-9) {
            let obj = m.objective_value(&x);
            let better = match (&best, m.sense()) {
                (None, _) => true,
                (Some((b, _)), Sense::Maximize) => obj > *b,
                (Some((b, _)), Sense::Minimize) => obj < *b,
            };
            if better {
                best = Some((obj, x));
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mip_matches_brute_force_on_packing(seed in 0u64..5000, n in 1usize..11, k in 1usize..4) {
        let m = random_packing(seed, n, k);
        let brute = brute_force_binary(&m).expect("packing is feasible at 0");
        let sol = solve_mip(&m, &BnbConfig::default()).unwrap().expect_solution();
        prop_assert!(
            (sol.objective - brute.0).abs() < 1e-5,
            "bnb {} vs brute {}",
            sol.objective,
            brute.0
        );
        prop_assert!(m.is_feasible(&sol.values, 1e-6));
        prop_assert!(sol.bound + 1e-6 >= sol.objective);
    }

    #[test]
    fn lp_relaxation_upper_bounds_integer_optimum(seed in 0u64..5000, n in 1usize..10) {
        let m = random_packing(seed, n, 2);
        let lp = solve_lp(&m).unwrap().expect_optimal();
        let brute = brute_force_binary(&m).unwrap();
        prop_assert!(
            lp.objective + 1e-6 >= brute.0,
            "lp {} below ilp {}",
            lp.objective,
            brute.0
        );
        prop_assert!(m.is_feasible(&lp.values, 1e-6));
    }

    #[test]
    fn lp_beats_random_feasible_points(seed in 0u64..5000) {
        // Random LP with box bounds and ≤ rows; compare against sampled
        // feasible points.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = rng.gen_range(2..7);
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|_| {
                m.add_var(0.0, Some(rng.gen_range(0.5..5.0)), rng.gen_range(-3.0..8.0))
                    .unwrap()
            })
            .collect();
        for _ in 0..rng.gen_range(1..4) {
            let terms: Vec<_> = vars
                .iter()
                .map(|&v| (v, rng.gen_range(0.0..4.0)))
                .collect();
            let rhs = rng.gen_range(1.0..10.0);
            m.add_constraint(terms, Cmp::Le, rhs).unwrap();
        }
        let lp = solve_lp(&m).unwrap().expect_optimal();
        prop_assert!(m.is_feasible(&lp.values, 1e-6));
        for _ in 0..200 {
            let x: Vec<f64> = vars
                .iter()
                .map(|&v| {
                    let (lb, ub) = m.bounds(v);
                    rng.gen_range(lb..=ub)
                })
                .collect();
            if m.is_feasible(&x, 1e-9) {
                prop_assert!(
                    lp.objective + 1e-6 >= m.objective_value(&x),
                    "sampled point beats 'optimal' LP"
                );
            }
        }
    }

    #[test]
    fn equality_models_solve_or_report_infeasible(seed in 0u64..2000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = Model::new(Sense::Minimize);
        let n = rng.gen_range(2..6);
        let vars: Vec<_> = (0..n)
            .map(|_| m.add_var(0.0, Some(3.0), rng.gen_range(0.1..5.0)).unwrap())
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        let rhs = rng.gen_range(0.0..(3.0 * n as f64) + 2.0);
        m.add_constraint(terms, Cmp::Eq, rhs).unwrap();
        match solve_lp(&m).unwrap() {
            LpOutcome::Optimal(s) => {
                prop_assert!(m.is_feasible(&s.values, 1e-6));
                let sum: f64 = s.values.iter().sum();
                prop_assert!((sum - rhs).abs() < 1e-6);
            }
            LpOutcome::Infeasible => prop_assert!(rhs > 3.0 * n as f64 - 1e-9),
            LpOutcome::Unbounded => prop_assert!(false, "bounded model reported unbounded"),
        }
    }

    #[test]
    fn minimization_mip_matches_brute_force(seed in 0u64..2000, n in 1usize..9) {
        // Covering flavour: min cost subject to a ≥ row; may be infeasible
        // only if all coefficients are ~0.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..n)
            .map(|_| m.add_binary_var(rng.gen_range(1.0..10.0)).unwrap())
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .map(|&v| (v, rng.gen_range(0.5..4.0)))
            .collect();
        let total: f64 = terms.iter().map(|(_, c)| c).sum();
        let rhs = total * rng.gen_range(0.1..0.9);
        m.add_constraint(terms, Cmp::Ge, rhs).unwrap();
        let brute = brute_force_binary(&m);
        match solve_mip(&m, &BnbConfig::default()).unwrap() {
            MipOutcome::Optimal(sol) => {
                let b = brute.expect("solver found a solution, brute force must too");
                prop_assert!((sol.objective - b.0).abs() < 1e-5);
            }
            MipOutcome::Infeasible => prop_assert!(brute.is_none()),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }
}

#[test]
fn moderately_sized_lp_solves_quickly() {
    // 120 vars, 40 rows — a smoke test that the dense tableau scales.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..120)
        .map(|_| m.add_var(0.0, Some(1.0), rng.gen_range(0.1..5.0)).unwrap())
        .collect();
    for _ in 0..40 {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.3) {
                terms.push((v, rng.gen_range(0.1..2.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs: f64 = terms.iter().map(|(_, c)| c).sum::<f64>() * 0.4;
        m.add_constraint(terms, Cmp::Le, rhs).unwrap();
    }
    let sol = solve_lp(&m).unwrap().expect_optimal();
    assert!(m.is_feasible(&sol.values, 1e-6));
    assert!(sol.objective > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_duals_satisfy_strong_duality_on_packing(seed in 0u64..4000) {
        // Random box-bounded packing LP with a known matrix; LP duality
        // for bounded variables: opt = y·b + Σ_j max(0, c_j − y·A_j)·u_j.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = rng.gen_range(2..8);
        let k = rng.gen_range(1..4);
        let mut m = Model::new(Sense::Maximize);
        let ubs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..3.0)).collect();
        let objs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..9.0)).collect();
        let vars: Vec<_> = (0..n)
            .map(|j| m.add_var(0.0, Some(ubs[j]), objs[j]).unwrap())
            .collect();
        let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
        for _ in 0..k {
            let coefs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.0)).collect();
            let rhs = coefs.iter().sum::<f64>() * rng.gen_range(0.2..0.8) + 0.1;
            let terms: Vec<_> = vars.iter().zip(&coefs).map(|(&v, &c)| (v, c)).collect();
            m.add_constraint(terms, Cmp::Le, rhs).unwrap();
            rows.push((coefs, rhs));
        }
        let sol = solve_lp(&m).unwrap().expect_optimal();
        prop_assert_eq!(sol.duals.len(), k);
        // Maximization ≤ rows: duals non-negative.
        for &y in &sol.duals {
            prop_assert!(y >= -1e-7, "negative dual {}", y);
        }
        // Strong duality with upper-bound terms.
        let y_b: f64 = sol.duals.iter().zip(&rows).map(|(y, (_, b))| y * b).sum();
        let bound_terms: f64 = (0..n)
            .map(|j| {
                let reduced = objs[j]
                    - sol
                        .duals
                        .iter()
                        .zip(&rows)
                        .map(|(y, (coefs, _))| y * coefs[j])
                        .sum::<f64>();
                reduced.max(0.0) * ubs[j]
            })
            .sum();
        let dual_obj = y_b + bound_terms;
        prop_assert!(
            (dual_obj - sol.objective).abs() < 1e-5 * (1.0 + sol.objective.abs()),
            "dual {} vs primal {}",
            dual_obj,
            sol.objective
        );
    }
}
