//! Descriptive statistics for request streams.
//!
//! Used by reports and by the experiment harness to sanity-check that a
//! generated workload has the intended shape (load profile, payment-rate
//! spread `H`, demand volume vs. network capacity).

use std::fmt;

use crate::request::Request;
use crate::time::Horizon;
use crate::vnf::VnfCatalog;

/// Aggregate statistics of a request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Number of requests.
    pub count: usize,
    /// Sum of payments (the revenue ceiling).
    pub total_payment: f64,
    /// Minimum payment rate observed.
    pub min_rate: f64,
    /// Maximum payment rate observed.
    pub max_rate: f64,
    /// Mean duration in slots.
    pub mean_duration: f64,
    /// Total demanded unit-slots assuming one instance per request
    /// (`Σ c(f_i)·d_i`) — a lower bound, since backups multiply it.
    pub unit_slots: u64,
    /// Per-slot count of active requests (the offered-load profile).
    pub load_profile: Vec<usize>,
}

impl WorkloadStats {
    /// Computes statistics for a stream against a catalog and horizon.
    ///
    /// Requests referencing unknown VNF types are skipped (they can never
    /// be admitted anyway).
    pub fn compute(requests: &[Request], catalog: &VnfCatalog, horizon: Horizon) -> Self {
        let mut total_payment = 0.0;
        let mut min_rate = f64::INFINITY;
        let mut max_rate: f64 = 0.0;
        let mut dur_total = 0usize;
        let mut unit_slots = 0u64;
        let mut load_profile = vec![0usize; horizon.len()];
        let mut count = 0usize;
        for r in requests {
            let Some(vnf) = catalog.get(r.vnf()) else {
                continue;
            };
            count += 1;
            total_payment += r.payment();
            let rate = r.payment_rate(vnf);
            min_rate = min_rate.min(rate);
            max_rate = max_rate.max(rate);
            dur_total += r.duration();
            unit_slots += vnf.compute() * r.duration() as u64;
            for t in r.slots() {
                if t < load_profile.len() {
                    load_profile[t] += 1;
                }
            }
        }
        WorkloadStats {
            count,
            total_payment,
            min_rate: if count == 0 { 0.0 } else { min_rate },
            max_rate,
            mean_duration: if count == 0 {
                0.0
            } else {
                dur_total as f64 / count as f64
            },
            unit_slots,
            load_profile,
        }
    }

    /// Observed payment-rate spread `H = max_rate / min_rate`.
    pub fn rate_spread(&self) -> f64 {
        if self.min_rate > 0.0 {
            self.max_rate / self.min_rate
        } else {
            0.0
        }
    }

    /// Peak concurrent requests across the horizon.
    pub fn peak_load(&self) -> usize {
        self.load_profile.iter().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests, Σpay {:.1}, rates [{:.2}, {:.2}] (H {:.1}), \
             mean duration {:.2}, {} unit-slots, peak load {}",
            self.count,
            self.total_payment,
            self.min_rate,
            self.max_rate,
            self.rate_spread(),
            self.mean_duration,
            self.unit_slots,
            self.peak_load()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::RequestGenerator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stats_reflect_generator_settings() {
        let h = Horizon::new(30);
        let catalog = VnfCatalog::standard();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let reqs = RequestGenerator::new(h)
            .payment_rate_band(2.0, 8.0)
            .unwrap()
            .generate(400, &catalog, &mut rng)
            .unwrap();
        let s = WorkloadStats::compute(&reqs, &catalog, h);
        assert_eq!(s.count, 400);
        assert!(s.min_rate >= 2.0 - 1e-9);
        assert!(s.max_rate <= 8.0 + 1e-9);
        assert!(s.rate_spread() <= 4.0 + 1e-6);
        assert!(s.mean_duration >= 1.0);
        assert!(s.unit_slots > 0);
        assert_eq!(s.load_profile.len(), 30);
        // Load profile sums to Σ durations.
        let total: usize = s.load_profile.iter().sum();
        let dur: usize = reqs.iter().map(|r| r.duration()).sum();
        assert_eq!(total, dur);
        assert!(s.peak_load() >= total / 30);
        assert!(s.to_string().contains("400 requests"));
    }

    #[test]
    fn empty_stream() {
        let s = WorkloadStats::compute(&[], &VnfCatalog::standard(), Horizon::new(5));
        assert_eq!(s.count, 0);
        assert_eq!(s.rate_spread(), 0.0);
        assert_eq!(s.peak_load(), 0);
        assert_eq!(s.mean_duration, 0.0);
    }
}
