use rand::Rng;

use mec_topology::Reliability;

use crate::distributions::{poisson, BoundedPareto, Zipf};
use crate::error::WorkloadError;
use crate::request::{Request, RequestId};
use crate::time::Horizon;
use crate::vnf::{VnfCatalog, VnfTypeId};

/// How arrival slots are assigned to generated requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Each request's arrival is uniform over the slots where its window
    /// still fits; matches the paper's "randomly generated" requests.
    Uniform,
    /// Arrivals follow a per-slot Poisson process whose rate is scaled so
    /// the expected total matches the requested count; produces bursty,
    /// trace-like arrival patterns.
    Poisson {
        /// Multiplies the per-slot rate; 1.0 keeps the expected total equal
        /// to the requested count, larger values front-load the horizon.
        burstiness: f64,
    },
}

/// How request durations are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationModel {
    /// Uniform over `[lo, hi]` slots (inclusive).
    Uniform {
        /// Minimum duration in slots.
        lo: usize,
        /// Maximum duration in slots.
        hi: usize,
    },
    /// Bounded-Pareto over `[lo, hi]` slots — heavy-tailed like cluster
    /// traces.
    Pareto {
        /// Minimum duration in slots.
        lo: usize,
        /// Maximum duration in slots.
        hi: usize,
        /// Tail exponent (smaller = heavier tail).
        alpha: f64,
    },
    /// Every request runs exactly this many slots.
    Fixed(usize),
}

/// How requested VNF types are drawn from the catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VnfSelection {
    /// Uniform over the catalog.
    Uniform,
    /// Zipf-skewed popularity with exponent `s` (rank 0 = first type).
    Zipf(f64),
}

/// Seeded random workload generator.
///
/// Defaults reproduce the paper's Section VI settings: requirements and
/// payments "randomly generated but in the same specific ranges", with the
/// payment drawn through the payment *rate*
/// `pr_i = pay_i / (d_i · c(f_i) · R_i)` so the ratio `H = pr_max / pr_min`
/// can be swept directly (Figure 2(a)).
///
/// # Example
///
/// ```
/// # use mec_workload::{RequestGenerator, VnfCatalog, Horizon};
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), mec_workload::WorkloadError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let reqs = RequestGenerator::new(Horizon::new(100))
///     .payment_rate_band(2.0, 10.0)?
///     .reliability_band(0.9, 0.97)?
///     .generate(250, &VnfCatalog::standard(), &mut rng)?;
/// assert_eq!(reqs.len(), 250);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RequestGenerator {
    horizon: Horizon,
    arrivals: ArrivalProcess,
    durations: DurationModel,
    vnf_selection: VnfSelection,
    reliability_band: (f64, f64),
    payment_rate_band: (f64, f64),
}

impl RequestGenerator {
    /// Creates a generator with the paper-like defaults: uniform arrivals,
    /// durations uniform in `[1, 8]`, uniform VNF popularity, reliability
    /// requirements in `[0.9, 0.98]`, payment rates in `[5, 10]`
    /// (`H = 2`).
    pub fn new(horizon: Horizon) -> Self {
        RequestGenerator {
            horizon,
            arrivals: ArrivalProcess::Uniform,
            durations: DurationModel::Uniform { lo: 1, hi: 8 },
            vnf_selection: VnfSelection::Uniform,
            reliability_band: (0.9, 0.98),
            payment_rate_band: (5.0, 10.0),
        }
    }

    /// The horizon requests are generated into.
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the duration model.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidDurationModel`] when the model is
    /// inverted (`lo > hi`), can draw a zero duration, or cannot fit a
    /// single window inside the horizon — callers learn at construction,
    /// not on the first `generate`.
    pub fn durations(mut self, durations: DurationModel) -> Result<Self, WorkloadError> {
        self.durations = durations;
        self.validate_durations()?;
        Ok(self)
    }

    /// Sets the VNF-type selection law.
    pub fn vnf_selection(mut self, sel: VnfSelection) -> Self {
        self.vnf_selection = sel;
        self
    }

    /// Sets the reliability-requirement band `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless
    /// `0 < lo ≤ hi < 1`.
    pub fn reliability_band(mut self, lo: f64, hi: f64) -> Result<Self, WorkloadError> {
        if !(lo > 0.0 && hi < 1.0 && lo <= hi) {
            return Err(WorkloadError::InvalidParameter("reliability band"));
        }
        self.reliability_band = (lo, hi);
        Ok(self)
    }

    /// Sets the payment-rate band `[pr_min, pr_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless
    /// `0 < pr_min ≤ pr_max` and both are finite.
    pub fn payment_rate_band(mut self, lo: f64, hi: f64) -> Result<Self, WorkloadError> {
        let valid = lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi;
        if !valid {
            return Err(WorkloadError::InvalidParameter("payment rate band"));
        }
        self.payment_rate_band = (lo, hi);
        Ok(self)
    }

    /// Fixes `pr_max` and sets `pr_min = pr_max / h` — the Figure 2(a)
    /// sweep of the payment-rate variation `H = pr_max / pr_min`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless `h ≥ 1`.
    pub fn payment_ratio(self, h: f64) -> Result<Self, WorkloadError> {
        let valid = h.is_finite() && h >= 1.0;
        if !valid {
            return Err(WorkloadError::InvalidParameter("payment ratio H"));
        }
        let hi = self.payment_rate_band.1;
        self.payment_rate_band(hi / h, hi)
    }

    /// The current `H = pr_max / pr_min`.
    pub fn payment_ratio_value(&self) -> f64 {
        self.payment_rate_band.1 / self.payment_rate_band.0
    }

    /// Generates exactly `count` requests in arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::UnknownVnfType`] for an empty catalog, or
    /// an [`WorkloadError::InvalidParameter`] from a degenerate duration
    /// model (e.g. `lo > hi` or durations longer than the horizon).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        count: usize,
        catalog: &VnfCatalog,
        rng: &mut R,
    ) -> Result<Vec<Request>, WorkloadError> {
        if catalog.is_empty() {
            return Err(WorkloadError::UnknownVnfType(0));
        }
        self.validate_durations()?;
        let zipf = match self.vnf_selection {
            VnfSelection::Zipf(s) => Some(Zipf::new(catalog.len(), s)?),
            VnfSelection::Uniform => None,
        };
        let arrivals = self.draw_arrivals(count, rng);
        let mut requests = Vec::with_capacity(count);
        for (i, arrival) in arrivals.into_iter().enumerate() {
            let duration = self.draw_duration(arrival, rng)?;
            let vnf_idx = match &zipf {
                Some(z) => z.sample(rng),
                None => rng.gen_range(0..catalog.len()),
            };
            let vnf = catalog.require(VnfTypeId(vnf_idx))?;
            let (rlo, rhi) = self.reliability_band;
            let rel = Reliability::new(rng.gen_range(rlo..=rhi))?;
            let (plo, phi) = self.payment_rate_band;
            let rate = rng.gen_range(plo..=phi);
            let payment = rate * duration as f64 * vnf.compute() as f64 * rel.value();
            requests.push(Request::new(
                RequestId(i),
                vnf.id(),
                rel,
                arrival,
                duration,
                payment,
                self.horizon,
            )?);
        }
        requests.sort_by_key(|r| (r.arrival(), r.id()));
        // Re-number so ids follow arrival order, matching online
        // processing; ids don't participate in any validated invariant,
        // so the sorted stream is renumbered in place.
        for (i, r) in requests.iter_mut().enumerate() {
            r.set_id(RequestId(i));
        }
        Ok(requests)
    }

    fn validate_durations(&self) -> Result<(), WorkloadError> {
        let t = self.horizon.len();
        let (lo, hi, ok) = match self.durations {
            DurationModel::Uniform { lo, hi } => (lo, hi, lo >= 1 && lo <= hi && lo <= t),
            DurationModel::Pareto { lo, hi, alpha } => {
                (lo, hi, lo >= 1 && lo <= hi && lo <= t && alpha > 0.0)
            }
            DurationModel::Fixed(d) => (d, d, d >= 1 && d <= t),
        };
        if ok {
            Ok(())
        } else {
            Err(WorkloadError::InvalidDurationModel { lo, hi, horizon: t })
        }
    }

    fn draw_arrivals<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        let t = self.horizon.len();
        match self.arrivals {
            ArrivalProcess::Uniform => (0..count).map(|_| rng.gen_range(0..t)).collect(),
            ArrivalProcess::Poisson { burstiness } => {
                let rate = (count as f64 / t as f64) * burstiness.max(0.0);
                let mut out = Vec::with_capacity(count);
                'outer: loop {
                    for slot in 0..t {
                        let k = poisson(rate, rng);
                        for _ in 0..k {
                            out.push(slot);
                            if out.len() == count {
                                break 'outer;
                            }
                        }
                    }
                    if rate == 0.0 {
                        // Degenerate rate: fall back to uniform fill.
                        while out.len() < count {
                            out.push(rng.gen_range(0..t));
                        }
                        break;
                    }
                }
                out.sort_unstable();
                out
            }
        }
    }

    fn draw_duration<R: Rng + ?Sized>(
        &self,
        arrival: usize,
        rng: &mut R,
    ) -> Result<usize, WorkloadError> {
        let room = self.horizon.len() - arrival; // ≥ 1 since arrival < T
        let d = match self.durations {
            DurationModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            DurationModel::Pareto { lo, hi, alpha } => {
                let dist = BoundedPareto::new(lo as f64, hi as f64 + 0.999, alpha)?;
                dist.sample(rng).floor() as usize
            }
            DurationModel::Fixed(d) => d,
        };
        Ok(d.clamp(1, room))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn standard() -> (RequestGenerator, VnfCatalog) {
        (
            RequestGenerator::new(Horizon::new(60)),
            VnfCatalog::standard(),
        )
    }

    #[test]
    fn generates_exact_count_in_arrival_order() {
        let (g, cat) = standard();
        let reqs = g.generate(500, &cat, &mut rng(1)).unwrap();
        assert_eq!(reqs.len(), 500);
        for w in reqs.windows(2) {
            assert!(w[0].arrival() <= w[1].arrival());
        }
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id().index(), i);
            assert!(r.end_slot() < 60);
        }
    }

    #[test]
    fn payments_respect_rate_band() {
        let (g, cat) = standard();
        let g = g.payment_rate_band(4.0, 8.0).unwrap();
        let reqs = g.generate(300, &cat, &mut rng(2)).unwrap();
        for r in &reqs {
            let vnf = cat.get(r.vnf()).unwrap();
            let rate = r.payment_rate(vnf);
            assert!(
                (4.0 - 1e-9..=8.0 + 1e-9).contains(&rate),
                "rate {rate} out of band"
            );
        }
    }

    #[test]
    fn payment_ratio_fixes_max_and_lowers_min() {
        let (g, _) = standard();
        let g = g.payment_rate_band(2.0, 10.0).unwrap();
        let g = g.payment_ratio(5.0).unwrap();
        assert!((g.payment_ratio_value() - 5.0).abs() < 1e-12);
        let g = g.payment_ratio(1.0).unwrap();
        assert!((g.payment_ratio_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reliability_band_respected() {
        let (g, cat) = standard();
        let g = g.reliability_band(0.92, 0.95).unwrap();
        let reqs = g.generate(200, &cat, &mut rng(3)).unwrap();
        for r in &reqs {
            let v = r.reliability_requirement().value();
            assert!((0.92..=0.95).contains(&v));
        }
    }

    #[test]
    fn poisson_arrivals_cover_horizon() {
        let (g, cat) = standard();
        let g = g.arrivals(ArrivalProcess::Poisson { burstiness: 1.0 });
        let reqs = g.generate(400, &cat, &mut rng(4)).unwrap();
        assert_eq!(reqs.len(), 400);
        let first = reqs.first().unwrap().arrival();
        let last = reqs.last().unwrap().arrival();
        assert!(last > first);
    }

    #[test]
    fn fixed_duration_clamped_to_horizon_room() {
        let g = RequestGenerator::new(Horizon::new(10))
            .durations(DurationModel::Fixed(4))
            .unwrap();
        let cat = VnfCatalog::standard();
        let reqs = g.generate(100, &cat, &mut rng(5)).unwrap();
        for r in &reqs {
            assert!(r.duration() <= 4);
            assert!(r.end_slot() < 10);
        }
    }

    #[test]
    fn pareto_durations_are_heavy_tailed() {
        let g = RequestGenerator::new(Horizon::new(200))
            .durations(DurationModel::Pareto {
                lo: 1,
                hi: 50,
                alpha: 1.1,
            })
            .unwrap();
        let cat = VnfCatalog::standard();
        let reqs = g.generate(2000, &cat, &mut rng(6)).unwrap();
        let short = reqs.iter().filter(|r| r.duration() <= 3).count();
        let long = reqs.iter().filter(|r| r.duration() >= 20).count();
        assert!(short > reqs.len() / 2);
        assert!(long > 0);
    }

    #[test]
    fn zipf_vnf_selection_skews() {
        let (g, cat) = standard();
        let g = g.vnf_selection(VnfSelection::Zipf(1.5));
        let reqs = g.generate(2000, &cat, &mut rng(7)).unwrap();
        let mut counts = vec![0usize; cat.len()];
        for r in &reqs {
            counts[r.vnf().index()] += 1;
        }
        assert!(counts[0] > counts[9] * 3);
    }

    #[test]
    fn parameter_validation() {
        let (g, _cat) = standard();
        assert!(g.clone().reliability_band(0.0, 0.9).is_err());
        assert!(g.clone().reliability_band(0.9, 1.0).is_err());
        assert!(g.clone().payment_rate_band(0.0, 5.0).is_err());
        assert!(g.clone().payment_rate_band(6.0, 5.0).is_err());
        assert!(g.clone().payment_ratio(0.5).is_err());
        // Inverted, zero, and over-horizon duration models are rejected
        // at construction with the typed error.
        assert_eq!(
            g.clone()
                .durations(DurationModel::Uniform { lo: 5, hi: 2 })
                .unwrap_err(),
            WorkloadError::InvalidDurationModel {
                lo: 5,
                hi: 2,
                horizon: g.horizon().len(),
            }
        );
        assert!(g.clone().durations(DurationModel::Fixed(0)).is_err());
        assert!(g
            .clone()
            .durations(DurationModel::Pareto {
                lo: 2,
                hi: 1,
                alpha: 1.0
            })
            .is_err());
        assert!(g
            .clone()
            .durations(DurationModel::Fixed(g.horizon().len() + 1))
            .is_err());
        let empty = VnfCatalog::from_specs(Vec::<(&str, u64, f64)>::new()).unwrap();
        assert!(g.generate(10, &empty, &mut rng(0)).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let (g, cat) = standard();
        let a = g.generate(100, &cat, &mut rng(9)).unwrap();
        let b = g.generate(100, &cat, &mut rng(9)).unwrap();
        assert_eq!(a, b);
    }
}
