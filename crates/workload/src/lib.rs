//! VNF catalog, user requests, and workload generation for MEC simulations.
//!
//! A user request `ρ_i = (f_i, R_i, a_i, d_i, pay_i)` asks for one VNF
//! service of type `f_i` with reliability requirement `R_i`, arriving at
//! slot `a_i`, running for `d_i` slots, paying `pay_i` on admission. This
//! crate models:
//!
//! * [`VnfType`] / [`VnfCatalog`] — the set `F` of virtualized network
//!   functions with per-type compute demand `c(f_i)` and reliability
//!   `r(f_i)`; [`VnfCatalog::standard`] reproduces the paper's evaluation
//!   catalog (10 types, reliabilities in `[0.9, 0.9999]`, demands 1–3
//!   computing units),
//! * [`Request`] — the request tuple with its activity window `V_i`,
//! * [`Horizon`] — the slotted monitoring period `T = {1..T}` (0-indexed
//!   internally),
//! * [`RequestGenerator`] — seeded random workloads with explicit control
//!   of the payment-rate ratio `H = pr_max / pr_min` (Figure 2(a) sweep),
//! * [`trace`] — a Google-cluster-*like* synthetic trace (heavy-tailed
//!   durations, bursty arrivals), substituting for the proprietary dataset
//!   the paper samples from.
//!
//! # Example
//!
//! ```
//! # use mec_workload::{VnfCatalog, RequestGenerator, Horizon};
//! # use rand::SeedableRng;
//! let catalog = VnfCatalog::standard();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let gen = RequestGenerator::new(Horizon::new(50));
//! let requests = gen.generate(100, &catalog, &mut rng).unwrap();
//! assert_eq!(requests.len(), 100);
//! assert!(requests.iter().all(|r| r.end_slot() < 50));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distributions;
mod error;
mod generator;
mod request;
pub mod stats;
mod time;
pub mod trace;
mod vnf;

pub use error::WorkloadError;
pub use generator::{ArrivalProcess, DurationModel, RequestGenerator, VnfSelection};
pub use mec_topology::Reliability;
pub use request::{Request, RequestId};
pub use time::{Horizon, TimeSlot};
pub use vnf::{VnfCatalog, VnfType, VnfTypeId};
