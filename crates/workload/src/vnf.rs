use std::fmt;

use mec_topology::Reliability;

use crate::error::WorkloadError;

/// Identifier of a VNF type within a [`VnfCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VnfTypeId(pub usize);

impl VnfTypeId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VnfTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A virtualized network function type `f_i ∈ F`.
///
/// Each type has a compute demand `c(f_i)` in computing units (the same
/// units cloudlet capacities are measured in) and a software reliability
/// `r(f_i) ∈ (0, 1)` — the probability a single instance is operational.
#[derive(Debug, Clone, PartialEq)]
pub struct VnfType {
    id: VnfTypeId,
    name: String,
    compute: u64,
    reliability: Reliability,
}

impl VnfType {
    /// Creates a VNF type.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroCompute`] if `compute == 0`.
    pub fn new(
        id: VnfTypeId,
        name: impl Into<String>,
        compute: u64,
        reliability: Reliability,
    ) -> Result<Self, WorkloadError> {
        if compute == 0 {
            return Err(WorkloadError::ZeroCompute);
        }
        Ok(VnfType {
            id,
            name: name.into(),
            compute,
            reliability,
        })
    }

    /// Dense identifier within the owning catalog.
    pub fn id(&self) -> VnfTypeId {
        self.id
    }

    /// Human-readable name, e.g. `"Firewall"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compute demand `c(f_i)` of one instance, in computing units.
    pub fn compute(&self) -> u64 {
        self.compute
    }

    /// Software reliability `r(f_i)` of one instance.
    pub fn reliability(&self) -> Reliability {
        self.reliability
    }
}

impl fmt::Display for VnfType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} c={} r={}",
            self.id, self.name, self.compute, self.reliability
        )
    }
}

/// The set `F` of available VNF types.
///
/// # Example
///
/// ```
/// # use mec_workload::VnfCatalog;
/// let cat = VnfCatalog::standard();
/// assert_eq!(cat.len(), 10);
/// for v in cat.iter() {
///     assert!((1..=3).contains(&v.compute()));
///     let r = v.reliability().value();
///     assert!((0.9..=0.9999).contains(&r));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VnfCatalog {
    types: Vec<VnfType>,
}

impl VnfCatalog {
    /// Builds a catalog from `(name, compute, reliability)` triples.
    ///
    /// # Errors
    ///
    /// Returns the first construction error ([`WorkloadError::ZeroCompute`]
    /// or a reliability range error).
    pub fn from_specs<I, S>(specs: I) -> Result<Self, WorkloadError>
    where
        I: IntoIterator<Item = (S, u64, f64)>,
        S: Into<String>,
    {
        let mut types = Vec::new();
        for (i, (name, compute, rel)) in specs.into_iter().enumerate() {
            let reliability = Reliability::new(rel)?;
            types.push(VnfType::new(VnfTypeId(i), name, compute, reliability)?);
        }
        Ok(VnfCatalog { types })
    }

    /// The catalog used by the paper's evaluation: 10 VNF types with
    /// reliabilities between 0.9 and 0.9999 and compute demands of 1–3
    /// computing units (parameters follow Kong et al., GLOBECOM 2017).
    pub fn standard() -> Self {
        Self::from_specs([
            ("Firewall", 2u64, 0.995),
            ("NAT", 1, 0.99),
            ("IDS", 3, 0.9),
            ("LoadBalancer", 2, 0.9999),
            ("WanOptimizer", 3, 0.95),
            ("FlowMonitor", 1, 0.98),
            ("VPNGateway", 2, 0.97),
            ("DPI", 3, 0.92),
            ("ProxyCache", 1, 0.9995),
            ("TranscoderV", 2, 0.93),
        ])
        .expect("standard catalog parameters are valid")
    }

    /// Number of types `n = |F|`.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the catalog has no types.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Looks a type up by id.
    pub fn get(&self, id: VnfTypeId) -> Option<&VnfType> {
        self.types.get(id.index())
    }

    /// Looks a type up by id, as an indexing operation.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::UnknownVnfType`] for an out-of-range id.
    pub fn require(&self, id: VnfTypeId) -> Result<&VnfType, WorkloadError> {
        self.get(id)
            .ok_or(WorkloadError::UnknownVnfType(id.index()))
    }

    /// Iterates over all types in id order.
    pub fn iter(&self) -> impl Iterator<Item = &VnfType> + '_ {
        self.types.iter()
    }

    /// Largest compute demand across the catalog.
    pub fn max_compute(&self) -> Option<u64> {
        self.types.iter().map(|t| t.compute()).max()
    }

    /// Smallest compute demand across the catalog.
    pub fn min_compute(&self) -> Option<u64> {
        self.types.iter().map(|t| t.compute()).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_matches_paper_parameters() {
        let cat = VnfCatalog::standard();
        assert_eq!(cat.len(), 10);
        assert!(!cat.is_empty());
        for v in cat.iter() {
            assert!((1..=3).contains(&v.compute()));
            let r = v.reliability().value();
            assert!((0.9..=0.9999).contains(&r), "{} out of range", v.name());
        }
        assert_eq!(cat.max_compute(), Some(3));
        assert_eq!(cat.min_compute(), Some(1));
    }

    #[test]
    fn ids_are_dense() {
        let cat = VnfCatalog::standard();
        for (i, v) in cat.iter().enumerate() {
            assert_eq!(v.id(), VnfTypeId(i));
            assert_eq!(cat.get(v.id()).unwrap().name(), v.name());
        }
    }

    #[test]
    fn require_reports_unknown() {
        let cat = VnfCatalog::standard();
        assert!(cat.require(VnfTypeId(0)).is_ok());
        assert_eq!(
            cat.require(VnfTypeId(99)).unwrap_err(),
            WorkloadError::UnknownVnfType(99)
        );
    }

    #[test]
    fn rejects_zero_compute() {
        assert_eq!(
            VnfCatalog::from_specs([("x", 0u64, 0.9)]).unwrap_err(),
            WorkloadError::ZeroCompute
        );
    }

    #[test]
    fn rejects_bad_reliability() {
        assert!(matches!(
            VnfCatalog::from_specs([("x", 1u64, 1.0)]).unwrap_err(),
            WorkloadError::Reliability(_)
        ));
    }

    #[test]
    fn display_forms() {
        let cat = VnfCatalog::standard();
        let v = cat.get(VnfTypeId(0)).unwrap();
        assert!(v.to_string().contains("Firewall"));
        assert_eq!(VnfTypeId(3).to_string(), "f3");
    }
}
