//! Small, self-contained sampling helpers used by the workload generators.
//!
//! Implemented here (rather than pulling in `rand_distr`) because the
//! experiments only need three simple laws, and keeping them local makes
//! the sampled streams stable across dependency upgrades.

use rand::Rng;

use crate::error::WorkloadError;

/// Bounded Pareto distribution on `[lo, hi]` with shape `alpha > 0`.
///
/// Heavy-tailed task durations are characteristic of the Google cluster
/// traces the paper samples from; a bounded Pareto reproduces the
/// "mostly short, occasionally very long" shape while keeping every
/// request inside the monitoring horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] unless
    /// `0 < lo < hi` and `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Result<Self, WorkloadError> {
        let valid = lo.is_finite()
            && hi.is_finite()
            && alpha.is_finite()
            && lo > 0.0
            && hi > lo
            && alpha > 0.0;
        if !valid {
            return Err(WorkloadError::InvalidParameter(
                "bounded pareto (lo, hi, alpha)",
            ));
        }
        Ok(BoundedPareto { lo, hi, alpha })
    }

    /// Draws one sample via inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        // Inverse CDF of the bounded Pareto.
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s ≥ 0`.
///
/// Used to skew VNF-type popularity: a handful of types (firewalls, NATs)
/// dominate real service catalogs. `s = 0` degenerates to uniform.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities, ascending to 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf law over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `n == 0`, or `s` is
    /// negative or non-finite.
    pub fn new(n: usize, s: f64) -> Result<Self, WorkloadError> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return Err(WorkloadError::InvalidParameter("zipf (n, s)"));
        }
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Ok(Zipf { cdf })
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Samples a Poisson-distributed count with mean `lambda` (Knuth's method
/// for small `lambda`, normal approximation above 30).
///
/// Used for per-slot arrival counts.
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let (mu, sigma) = (lambda, lambda.sqrt());
        let sample = mu + sigma * standard_normal(rng);
        return sample.round().max(0.0) as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let d = BoundedPareto::new(1.0, 20.0, 1.5).unwrap();
        let mut r = rng(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=20.0).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let d = BoundedPareto::new(1.0, 100.0, 1.1).unwrap();
        let mut r = rng(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let small = samples.iter().filter(|&&x| x < 5.0).count() as f64 / n as f64;
        let large = samples.iter().filter(|&&x| x > 50.0).count() as f64 / n as f64;
        // Most mass near the lower bound, but a real tail remains.
        assert!(small > 0.7, "small fraction {small}");
        assert!(large > 0.005, "large fraction {large}");
    }

    #[test]
    fn bounded_pareto_rejects_bad_params() {
        assert!(BoundedPareto::new(0.0, 10.0, 1.0).is_err());
        assert!(BoundedPareto::new(5.0, 5.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 10.0, 0.0).is_err());
        assert!(BoundedPareto::new(1.0, f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        let mut r = rng(3);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let z = Zipf::new(10, 1.2).unwrap();
        let mut r = rng(4);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > counts[9] * 3);
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        assert!(Zipf::new(5, f64::NAN).is_err());
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut r = rng(5);
        for &lambda in &[0.5, 3.0, 12.0, 60.0] {
            let n = 20_000;
            let total: usize = (0..n).map(|_| poisson(lambda, &mut r)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(poisson(0.0, &mut r), 0);
        assert_eq!(poisson(-1.0, &mut r), 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
