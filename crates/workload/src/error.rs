use std::error::Error;
use std::fmt;

use mec_topology::TopologyError;

/// Errors produced while constructing requests or workloads.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A request duration of zero slots was given.
    ZeroDuration,
    /// A payment was not a finite positive number.
    InvalidPayment(f64),
    /// A VNF compute demand of zero units was given.
    ZeroCompute,
    /// The request window `[a_i, a_i + d_i)` does not fit inside the horizon.
    WindowOutsideHorizon {
        /// Arrival slot of the offending request.
        arrival: usize,
        /// Duration of the offending request.
        duration: usize,
        /// Horizon length it failed to fit into.
        horizon: usize,
    },
    /// A reliability value fell outside `(0, 1)`.
    Reliability(TopologyError),
    /// The VNF catalog is empty, or a referenced type is missing.
    UnknownVnfType(usize),
    /// A generator parameter was out of its documented range.
    InvalidParameter(&'static str),
    /// A duration model is inverted (`lo > hi`), zero, or longer than
    /// the horizon it must generate into.
    InvalidDurationModel {
        /// Shortest duration the model can draw.
        lo: usize,
        /// Longest duration the model can draw.
        hi: usize,
        /// Horizon length the windows must fit into.
        horizon: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ZeroDuration => write!(f, "request duration must be at least one slot"),
            WorkloadError::InvalidPayment(p) => {
                write!(f, "payment {p} is not a finite positive number")
            }
            WorkloadError::ZeroCompute => write!(f, "vnf compute demand must be positive"),
            WorkloadError::WindowOutsideHorizon {
                arrival,
                duration,
                horizon,
            } => write!(
                f,
                "window [{arrival}, {arrival}+{duration}) does not fit in horizon of {horizon} slots"
            ),
            WorkloadError::Reliability(e) => write!(f, "invalid reliability: {e}"),
            WorkloadError::UnknownVnfType(i) => write!(f, "unknown vnf type index {i}"),
            WorkloadError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            WorkloadError::InvalidDurationModel { lo, hi, horizon } => write!(
                f,
                "duration model [{lo}, {hi}] is inverted, zero, or exceeds the {horizon}-slot \
                 horizon"
            ),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Reliability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for WorkloadError {
    fn from(e: TopologyError) -> Self {
        WorkloadError::Reliability(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let errs: Vec<WorkloadError> = vec![
            WorkloadError::ZeroDuration,
            WorkloadError::InvalidPayment(-3.0),
            WorkloadError::ZeroCompute,
            WorkloadError::WindowOutsideHorizon {
                arrival: 9,
                duration: 3,
                horizon: 10,
            },
            WorkloadError::UnknownVnfType(4),
            WorkloadError::InvalidParameter("pr_min"),
            WorkloadError::InvalidDurationModel {
                lo: 5,
                hi: 2,
                horizon: 10,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn reliability_error_has_source() {
        let e = WorkloadError::from(TopologyError::ReliabilityOutOfRange(2.0));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("invalid reliability"));
    }
}
