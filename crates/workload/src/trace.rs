//! A Google-cluster-*like* synthetic trace.
//!
//! The paper randomizes request parameters "using the data sets in
//! \[Google cluster data, Hellerstein 2010\]". That dataset is a large
//! proprietary-format dump; what the evaluation actually takes from it is
//! the *shape* of task arrivals and durations:
//!
//! * durations are heavy-tailed — most tasks are short, a few run very
//!   long;
//! * arrivals are bursty — load varies by time of day with sub-hour spikes;
//! * resource demands fall into a small number of machine-size-relative
//!   buckets.
//!
//! [`ClusterTrace`] synthesizes a request stream with those properties:
//! bounded-Pareto durations, Poisson arrivals modulated by a diurnal
//! (sinusoidal) rate profile, and demand/payment draws matching
//! [`RequestGenerator`](crate::RequestGenerator)'s conventions. Everything
//! is seeded, so experiments are reproducible. The substitution is recorded
//! in `DESIGN.md`.

use rand::Rng;

use mec_topology::Reliability;

use crate::distributions::{poisson, BoundedPareto};
use crate::error::WorkloadError;
use crate::request::{Request, RequestId};
use crate::time::Horizon;
use crate::vnf::{VnfCatalog, VnfTypeId};

/// Configuration of the synthetic cluster trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTrace {
    horizon: Horizon,
    /// Mean arrivals per slot at the diurnal baseline.
    base_rate: f64,
    /// Peak-to-trough ratio of the diurnal modulation (`≥ 1`).
    diurnal_swing: f64,
    /// Number of slots in one diurnal period.
    period: usize,
    /// Duration tail exponent (smaller = heavier).
    duration_alpha: f64,
    /// Maximum duration in slots.
    max_duration: usize,
    /// Reliability-requirement band.
    reliability_band: (f64, f64),
    /// Payment-rate band.
    payment_rate_band: (f64, f64),
}

impl ClusterTrace {
    /// Creates a trace config with defaults mirroring the published
    /// summary statistics of the 2010 Google cluster snapshot (heavy tail
    /// `α ≈ 1.3`, ~3× day/night swing).
    pub fn new(horizon: Horizon, base_rate: f64) -> Self {
        ClusterTrace {
            horizon,
            base_rate,
            diurnal_swing: 3.0,
            period: horizon.len().clamp(24, 288),
            duration_alpha: 1.3,
            max_duration: (horizon.len() / 4).max(1),
            reliability_band: (0.9, 0.98),
            payment_rate_band: (5.0, 10.0),
        }
    }

    /// Sets the peak-to-trough ratio of the diurnal modulation.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `swing < 1`.
    pub fn diurnal_swing(mut self, swing: f64) -> Result<Self, WorkloadError> {
        let valid = swing.is_finite() && swing >= 1.0;
        if !valid {
            return Err(WorkloadError::InvalidParameter("diurnal swing"));
        }
        self.diurnal_swing = swing;
        Ok(self)
    }

    /// Sets the duration tail exponent.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `alpha ≤ 0`.
    pub fn duration_alpha(mut self, alpha: f64) -> Result<Self, WorkloadError> {
        let valid = alpha.is_finite() && alpha > 0.0;
        if !valid {
            return Err(WorkloadError::InvalidParameter("duration alpha"));
        }
        self.duration_alpha = alpha;
        Ok(self)
    }

    /// Instantaneous arrival rate at slot `t` (diurnal modulation).
    pub fn rate_at(&self, t: usize) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t % self.period) as f64 / self.period as f64;
        // Sinusoid between 1/swing and 1, scaled by the base rate.
        let depth = 1.0 - 1.0 / self.diurnal_swing;
        self.base_rate * (1.0 - depth * (0.5 + 0.5 * phase.cos()))
    }

    /// Generates the full trace over the horizon.
    ///
    /// The number of requests is random (Poisson thinning of the rate
    /// profile); use [`ClusterTrace::generate_exact`] when an exact count
    /// is required.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::UnknownVnfType`] for an empty catalog.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        catalog: &VnfCatalog,
        rng: &mut R,
    ) -> Result<Vec<Request>, WorkloadError> {
        if catalog.is_empty() {
            return Err(WorkloadError::UnknownVnfType(0));
        }
        let mut out = Vec::new();
        for t in self.horizon.slots() {
            let k = poisson(self.rate_at(t), rng);
            for _ in 0..k {
                out.push(self.one_request(RequestId(out.len()), t, catalog, rng)?);
            }
        }
        Ok(out)
    }

    /// Generates exactly `count` requests by cycling the rate profile.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::UnknownVnfType`] for an empty catalog.
    pub fn generate_exact<R: Rng + ?Sized>(
        &self,
        count: usize,
        catalog: &VnfCatalog,
        rng: &mut R,
    ) -> Result<Vec<Request>, WorkloadError> {
        if catalog.is_empty() {
            return Err(WorkloadError::UnknownVnfType(0));
        }
        // Sample arrival slots proportional to the rate profile.
        let weights: Vec<f64> = self.horizon.slots().map(|t| self.rate_at(t)).collect();
        let total: f64 = weights.iter().sum();
        let mut arrivals: Vec<usize> = (0..count)
            .map(|_| {
                let mut u = rng.gen::<f64>() * total;
                for (t, w) in weights.iter().enumerate() {
                    if u < *w {
                        return t;
                    }
                    u -= w;
                }
                self.horizon.len() - 1
            })
            .collect();
        arrivals.sort_unstable();
        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, t)| self.one_request(RequestId(i), t, catalog, rng))
            .collect()
    }

    fn one_request<R: Rng + ?Sized>(
        &self,
        id: RequestId,
        arrival: usize,
        catalog: &VnfCatalog,
        rng: &mut R,
    ) -> Result<Request, WorkloadError> {
        let room = self.horizon.len() - arrival;
        let hi = self.max_duration.max(1) as f64;
        let duration = if hi <= 1.0 {
            1
        } else {
            let dist = BoundedPareto::new(1.0, hi + 0.999, self.duration_alpha)?;
            (dist.sample(rng).floor() as usize).clamp(1, room)
        };
        let vnf = catalog.require(VnfTypeId(rng.gen_range(0..catalog.len())))?;
        let (rlo, rhi) = self.reliability_band;
        let rel = Reliability::new(rng.gen_range(rlo..=rhi))?;
        let (plo, phi) = self.payment_rate_band;
        let rate = rng.gen_range(plo..=phi);
        let payment = rate * duration as f64 * vnf.compute() as f64 * rel.value();
        Request::new(id, vnf.id(), rel, arrival, duration, payment, self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn rate_profile_oscillates_between_bounds() {
        let trace = ClusterTrace::new(Horizon::new(100), 6.0);
        let rates: Vec<f64> = (0..100).map(|t| trace.rate_at(t)).collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max <= 6.0 + 1e-9);
        assert!(min >= 6.0 / 3.0 - 1e-9);
        assert!(max / min > 2.0, "swing too small: {max}/{min}");
    }

    #[test]
    fn generate_produces_valid_requests() {
        let trace = ClusterTrace::new(Horizon::new(120), 4.0);
        let cat = VnfCatalog::standard();
        let reqs = trace.generate(&cat, &mut rng(1)).unwrap();
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert!(r.end_slot() < 120);
            assert!(r.payment() > 0.0);
        }
        // Expected total ≈ Σ rate ≈ 120 · (between 4/3 and 4).
        assert!(
            reqs.len() > 100 && reqs.len() < 500,
            "{} requests",
            reqs.len()
        );
    }

    #[test]
    fn generate_exact_hits_count_and_follows_profile() {
        let trace = ClusterTrace::new(Horizon::new(96), 5.0);
        let cat = VnfCatalog::standard();
        let reqs = trace.generate_exact(3000, &cat, &mut rng(2)).unwrap();
        assert_eq!(reqs.len(), 3000);
        // Arrivals sorted.
        for w in reqs.windows(2) {
            assert!(w[0].arrival() <= w[1].arrival());
        }
        // Peak slots (phase π, middle of the period) should see more
        // arrivals than trough slots (phase 0).
        let period = 96;
        let mid = period / 2;
        let at = |t: usize| reqs.iter().filter(|r| r.arrival() == t).count();
        let peak: usize = (mid - 5..mid + 5).map(at).sum();
        let trough: usize = (0..5).chain(period - 5..period).map(at).sum();
        assert!(peak > trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn durations_heavy_tailed() {
        let trace = ClusterTrace::new(Horizon::new(400), 2.0);
        let cat = VnfCatalog::standard();
        let reqs = trace.generate_exact(4000, &cat, &mut rng(3)).unwrap();
        let short = reqs.iter().filter(|r| r.duration() <= 3).count();
        let long = reqs.iter().filter(|r| r.duration() >= 30).count();
        assert!(short > reqs.len() / 2);
        assert!(long > 0);
    }

    #[test]
    fn validation() {
        let t = ClusterTrace::new(Horizon::new(50), 1.0);
        assert!(t.clone().diurnal_swing(0.5).is_err());
        assert!(t.clone().duration_alpha(0.0).is_err());
        let empty = VnfCatalog::from_specs(Vec::<(&str, u64, f64)>::new()).unwrap();
        assert!(t.generate(&empty, &mut rng(0)).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let trace = ClusterTrace::new(Horizon::new(60), 3.0);
        let cat = VnfCatalog::standard();
        let a = trace.generate(&cat, &mut rng(8)).unwrap();
        let b = trace.generate(&cat, &mut rng(8)).unwrap();
        assert_eq!(a, b);
    }
}
