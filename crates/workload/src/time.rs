use std::fmt;

/// A discrete time slot. Slots are 0-indexed internally; the paper's
/// `T = {1, …, T}` maps to `0..T`.
pub type TimeSlot = usize;

/// The slotted monitoring period `T`.
///
/// Requests are only considered when their whole execution window fits
/// inside the horizon (`a_i + d_i − 1 ∈ T` in the paper's notation).
///
/// # Example
///
/// ```
/// # use mec_workload::Horizon;
/// let h = Horizon::new(10);
/// assert_eq!(h.len(), 10);
/// assert!(h.contains_window(8, 2));
/// assert!(!h.contains_window(9, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Horizon {
    slots: usize,
}

impl Horizon {
    /// Creates a horizon of `slots` time slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`; a zero-length monitoring period admits no
    /// requests and always indicates a configuration bug.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "horizon must have at least one slot");
        Horizon { slots }
    }

    /// Number of slots `T`.
    pub fn len(&self) -> usize {
        self.slots
    }

    /// Always false; a horizon has at least one slot.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all slots `0..T`.
    pub fn slots(&self) -> std::ops::Range<TimeSlot> {
        0..self.slots
    }

    /// Whether slot `t` lies inside the horizon.
    pub fn contains(&self, t: TimeSlot) -> bool {
        t < self.slots
    }

    /// Whether the window starting at `arrival` with `duration` slots fits.
    pub fn contains_window(&self, arrival: TimeSlot, duration: usize) -> bool {
        duration > 0
            && arrival < self.slots
            && arrival
                .checked_add(duration)
                .is_some_and(|end| end <= self.slots)
    }
}

impl fmt::Display for Horizon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "horizon[0..{})", self.slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_containment() {
        let h = Horizon::new(5);
        assert!(h.contains_window(0, 5));
        assert!(h.contains_window(4, 1));
        assert!(!h.contains_window(4, 2));
        assert!(!h.contains_window(5, 1));
        assert!(!h.contains_window(0, 0));
        assert!(!h.contains_window(0, usize::MAX)); // overflow-safe
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_horizon_panics() {
        Horizon::new(0);
    }

    #[test]
    fn slots_iterate_all() {
        let h = Horizon::new(3);
        assert_eq!(h.slots().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(h.contains(2));
        assert!(!h.contains(3));
        assert!(!h.is_empty());
        assert_eq!(h.to_string(), "horizon[0..3)");
    }
}
