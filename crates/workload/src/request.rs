use std::fmt;

use mec_topology::Reliability;

use crate::error::WorkloadError;
use crate::time::{Horizon, TimeSlot};
use crate::vnf::{VnfType, VnfTypeId};

/// Identifier of a request, dense in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub usize);

impl RequestId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ{}", self.0)
    }
}

/// A user request `ρ_i = (f_i, R_i, a_i, d_i, pay_i)`.
///
/// The request asks for one VNF service of type `f_i`, requires that the
/// probability at least one of its (primary + backup) instances is alive is
/// at least `R_i`, arrives at slot `a_i`, executes for `d_i` consecutive
/// slots, and pays `pay_i` if admitted.
///
/// The paper encodes the window as a binary vector `V_i` of length `T`;
/// [`Request::active_at`] and [`Request::slots`] provide the same
/// information without materializing the vector (use
/// [`Request::activity_vector`] when the explicit form is needed, e.g. for
/// LP constraint rows).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    id: RequestId,
    vnf: VnfTypeId,
    reliability_req: Reliability,
    arrival: TimeSlot,
    duration: usize,
    payment: f64,
}

impl Request {
    /// Creates a request after validating every field.
    ///
    /// # Errors
    ///
    /// * [`WorkloadError::ZeroDuration`] if `duration == 0`.
    /// * [`WorkloadError::InvalidPayment`] unless `payment` is finite and
    ///   positive.
    /// * [`WorkloadError::WindowOutsideHorizon`] if the execution window
    ///   does not fit inside `horizon` (the paper only considers requests
    ///   with `a_i + d_i − 1 ∈ T`).
    pub fn new(
        id: RequestId,
        vnf: VnfTypeId,
        reliability_req: Reliability,
        arrival: TimeSlot,
        duration: usize,
        payment: f64,
        horizon: Horizon,
    ) -> Result<Self, WorkloadError> {
        if duration == 0 {
            return Err(WorkloadError::ZeroDuration);
        }
        if !payment.is_finite() || payment <= 0.0 {
            return Err(WorkloadError::InvalidPayment(payment));
        }
        if !horizon.contains_window(arrival, duration) {
            return Err(WorkloadError::WindowOutsideHorizon {
                arrival,
                duration,
                horizon: horizon.len(),
            });
        }
        Ok(Request {
            id,
            vnf,
            reliability_req,
            arrival,
            duration,
            payment,
        })
    }

    /// Dense identifier (arrival order).
    #[inline]
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Re-numbers the request; every validated invariant is independent
    /// of the id, so the generator renumbers sorted streams in place.
    pub(crate) fn set_id(&mut self, id: RequestId) {
        self.id = id;
    }

    /// Requested VNF type `f_i`.
    #[inline]
    pub fn vnf(&self) -> VnfTypeId {
        self.vnf
    }

    /// Reliability requirement `R_i`.
    #[inline]
    pub fn reliability_requirement(&self) -> Reliability {
        self.reliability_req
    }

    /// Arrival slot `a_i` (0-indexed).
    #[inline]
    pub fn arrival(&self) -> TimeSlot {
        self.arrival
    }

    /// Execution duration `d_i` in slots.
    #[inline]
    pub fn duration(&self) -> usize {
        self.duration
    }

    /// Last slot of the execution window, `a_i + d_i − 1`.
    pub fn end_slot(&self) -> TimeSlot {
        self.arrival + self.duration - 1
    }

    /// Payment `pay_i` collected if the request is admitted.
    #[inline]
    pub fn payment(&self) -> f64 {
        self.payment
    }

    /// Whether the request occupies slot `t` (`V_i[t] = 1`).
    pub fn active_at(&self, t: TimeSlot) -> bool {
        t >= self.arrival && t <= self.end_slot()
    }

    /// The execution slots `T'_i`, in order.
    #[inline]
    pub fn slots(&self) -> std::ops::RangeInclusive<TimeSlot> {
        self.arrival..=self.end_slot()
    }

    /// Materializes the binary activity vector `V_i` of length `horizon`.
    pub fn activity_vector(&self, horizon: Horizon) -> Vec<bool> {
        (0..horizon.len()).map(|t| self.active_at(t)).collect()
    }

    /// Payment rate `pr_i = pay_i / (d_i · c(f_i) · R_i)` (Section VI).
    ///
    /// The caller supplies the resolved VNF type; passing a type whose id
    /// differs from [`Request::vnf`] is a logic error (checked in debug
    /// builds).
    pub fn payment_rate(&self, vnf: &VnfType) -> f64 {
        debug_assert_eq!(
            vnf.id(),
            self.vnf,
            "payment_rate called with wrong vnf type"
        );
        self.payment / (self.duration as f64 * vnf.compute() as f64 * self.reliability_req.value())
    }

    /// Whether two requests overlap in time.
    pub fn overlaps(&self, other: &Request) -> bool {
        self.arrival <= other.end_slot() && other.arrival <= self.end_slot()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}, R={}, t=[{}..={}], pay={})",
            self.id,
            self.vnf,
            self.reliability_req,
            self.arrival,
            self.end_slot(),
            self.payment
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfCatalog;

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn request(arrival: usize, duration: usize) -> Request {
        Request::new(
            RequestId(0),
            VnfTypeId(1),
            rel(0.95),
            arrival,
            duration,
            10.0,
            Horizon::new(10),
        )
        .unwrap()
    }

    #[test]
    fn window_accessors() {
        let r = request(2, 3);
        assert_eq!(r.end_slot(), 4);
        assert!(!r.active_at(1));
        assert!(r.active_at(2));
        assert!(r.active_at(4));
        assert!(!r.active_at(5));
        assert_eq!(r.slots().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn activity_vector_matches_paper_example() {
        // Paper: T = 3, a_i = 1, d_i = 2 → V_i = [1, 1, 0] (1-indexed);
        // 0-indexed that is arrival 0, duration 2.
        let r = Request::new(
            RequestId(0),
            VnfTypeId(0),
            rel(0.9),
            0,
            2,
            1.0,
            Horizon::new(3),
        )
        .unwrap();
        assert_eq!(r.activity_vector(Horizon::new(3)), vec![true, true, false]);
    }

    #[test]
    fn validation_errors() {
        let h = Horizon::new(10);
        assert_eq!(
            Request::new(RequestId(0), VnfTypeId(0), rel(0.9), 0, 0, 1.0, h).unwrap_err(),
            WorkloadError::ZeroDuration
        );
        assert!(matches!(
            Request::new(RequestId(0), VnfTypeId(0), rel(0.9), 0, 1, 0.0, h).unwrap_err(),
            WorkloadError::InvalidPayment(_)
        ));
        assert!(matches!(
            Request::new(RequestId(0), VnfTypeId(0), rel(0.9), 8, 3, 1.0, h).unwrap_err(),
            WorkloadError::WindowOutsideHorizon { .. }
        ));
        assert!(matches!(
            Request::new(RequestId(0), VnfTypeId(0), rel(0.9), 0, 1, f64::NAN, h).unwrap_err(),
            WorkloadError::InvalidPayment(_)
        ));
    }

    #[test]
    fn payment_rate_formula() {
        let cat = VnfCatalog::standard();
        let vnf = cat.get(VnfTypeId(1)).unwrap(); // NAT: compute 1
        let r = Request::new(
            RequestId(0),
            VnfTypeId(1),
            rel(0.5),
            0,
            4,
            8.0,
            Horizon::new(10),
        )
        .unwrap();
        // pr = 8 / (4 * 1 * 0.5) = 4.
        assert!((r.payment_rate(vnf) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_detection() {
        let a = request(0, 3); // [0,2]
        let b = request(2, 3); // [2,4]
        let c = request(3, 2); // [3,4]
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn display_includes_window() {
        let r = request(1, 2);
        let s = r.to_string();
        assert!(s.contains("[1..=2]"));
    }
}
