//! Property-based tests for requests and workload generation.

use mec_topology::Reliability;
use mec_workload::trace::ClusterTrace;
use mec_workload::{
    ArrivalProcess, DurationModel, Horizon, Request, RequestGenerator, RequestId, VnfCatalog,
    VnfSelection, VnfTypeId,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn request_window_always_inside_horizon(
        t in 1usize..200,
        arrival in 0usize..200,
        duration in 1usize..50,
        pay in 0.01f64..1e6,
    ) {
        let h = Horizon::new(t);
        let r = Request::new(
            RequestId(0),
            VnfTypeId(0),
            Reliability::new(0.9).unwrap(),
            arrival,
            duration,
            pay,
            h,
        );
        match r {
            Ok(req) => {
                prop_assert!(req.end_slot() < t);
                prop_assert_eq!(req.slots().count(), duration);
                // Activity vector has exactly `duration` ones.
                let ones = req.activity_vector(h).iter().filter(|&&b| b).count();
                prop_assert_eq!(ones, duration);
            }
            Err(_) => prop_assert!(arrival + duration > t || arrival >= t),
        }
    }

    #[test]
    fn generator_invariants(
        seed in 0u64..500,
        count in 1usize..300,
        horizon in 5usize..120,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cat = VnfCatalog::standard();
        let gen = RequestGenerator::new(Horizon::new(horizon));
        let reqs = gen.generate(count, &cat, &mut rng).unwrap();
        prop_assert_eq!(reqs.len(), count);
        for (i, r) in reqs.iter().enumerate() {
            prop_assert_eq!(r.id().index(), i);
            prop_assert!(r.end_slot() < horizon);
            prop_assert!(r.payment() > 0.0);
            prop_assert!(cat.get(r.vnf()).is_some());
            let rel = r.reliability_requirement().value();
            prop_assert!((0.9..=0.98).contains(&rel));
        }
        for w in reqs.windows(2) {
            prop_assert!(w[0].arrival() <= w[1].arrival());
        }
    }

    #[test]
    fn payment_rate_band_is_respected_for_all_models(
        seed in 0u64..200,
        lo in 0.5f64..4.0,
        spread in 0.0f64..10.0,
    ) {
        let hi = lo + spread;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cat = VnfCatalog::standard();
        let gen = RequestGenerator::new(Horizon::new(40))
            .payment_rate_band(lo, hi).unwrap()
            .durations(DurationModel::Uniform { lo: 1, hi: 6 }).unwrap()
            .vnf_selection(VnfSelection::Zipf(1.0));
        let reqs = gen.generate(50, &cat, &mut rng).unwrap();
        for r in &reqs {
            let vnf = cat.get(r.vnf()).unwrap();
            let rate = r.payment_rate(vnf);
            prop_assert!(rate >= lo - 1e-9 && rate <= hi + 1e-9);
        }
    }

    #[test]
    fn poisson_arrivals_generate_exact_count(
        seed in 0u64..100,
        count in 1usize..200,
        burst in 0.1f64..3.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cat = VnfCatalog::standard();
        let gen = RequestGenerator::new(Horizon::new(30))
            .arrivals(ArrivalProcess::Poisson { burstiness: burst });
        let reqs = gen.generate(count, &cat, &mut rng).unwrap();
        prop_assert_eq!(reqs.len(), count);
    }

    #[test]
    fn cluster_trace_exact_is_exact(seed in 0u64..100, count in 1usize..400) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let cat = VnfCatalog::standard();
        let trace = ClusterTrace::new(Horizon::new(50), 2.0);
        let reqs = trace.generate_exact(count, &cat, &mut rng).unwrap();
        prop_assert_eq!(reqs.len(), count);
        for r in &reqs {
            prop_assert!(r.end_slot() < 50);
        }
    }
}
