//! Sink-free copies of the four online schedulers.
//!
//! The production schedulers carry a `S: TraceSink` type parameter whose
//! `NoopSink` default is *supposed* to compile the instrumentation away.
//! `bench_report`'s `obs_overhead` section verifies that claim by racing
//! the noop-sink production schedulers against these copies, which never
//! had the hooks in the first place: same flat-buffer/prefix-sum hot
//! path, no `sink` field, no `S::ENABLED` branches, no event types in
//! scope. The primary check is deterministic — the noop-sink run must
//! produce the identical schedule with the identical heap-allocation
//! count (decision events allocate `String`/`Vec` fields, so a hook
//! surviving codegen shows up immediately) — backed by a loose timed
//! bound, since wall-clock A/B between separately placed copies of the
//! same instruction stream carries persistent code-placement bias.
//!
//! `tests/trace_obs.rs` additionally pins both generations to identical
//! decision streams, so the race compares two implementations of the
//! same function.

use mec_topology::CloudletId;
use mec_workload::Request;
use vnfrel::offsite::RejectionCounters as OffsiteRejectionCounters;
use vnfrel::onsite::CapacityPolicy;
use vnfrel::onsite::RejectionCounters as OnsiteRejectionCounters;
use vnfrel::{
    CapacityLedger, Decision, DualPrices, OnlineScheduler, Placement, ProblemInstance, Scheme,
    VnfrelError,
};

/// Local copy of the crate-private lazy candidate-selection iterator used
/// by the production hot path (`vnfrel::pricing::CheapestFirst`): yields
/// candidate indices in ascending `(key, index)` order, ordering one
/// small block at a time.
#[derive(Debug)]
struct CheapestFirst<'a> {
    keys: &'a mut Vec<(f64, u32)>,
    sorted: usize,
    cursor: usize,
}

const SELECT_BLOCK: usize = 8;
const SCAN_THRESHOLD: usize = 32;

impl<'a> CheapestFirst<'a> {
    #[inline]
    fn new(keys: &'a mut Vec<(f64, u32)>) -> Self {
        CheapestFirst {
            keys,
            sorted: 0,
            cursor: 0,
        }
    }

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.cursor >= self.keys.len() {
            return None;
        }
        if self.keys.len() <= SCAN_THRESHOLD {
            let mut min = self.cursor;
            for i in self.cursor + 1..self.keys.len() {
                let (a, b) = (self.keys[i], self.keys[min]);
                if a.0 < b.0 || (a.0 == b.0 && a.1 < b.1) {
                    min = i;
                }
            }
            self.keys.swap(self.cursor, min);
        } else if self.cursor == self.sorted {
            let cmp = |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
            let tail = &mut self.keys[self.sorted..];
            let step = SELECT_BLOCK.min(tail.len());
            if step < tail.len() {
                tail.select_nth_unstable_by(step - 1, cmp);
            }
            tail[..step].sort_unstable_by(cmp);
            self.sorted += step;
        }
        let idx = self.keys[self.cursor].1;
        self.cursor += 1;
        Some(idx)
    }
}

/// Algorithm 1 without the trace-sink parameter.
#[derive(Debug)]
pub struct UninstrumentedOnsitePrimalDual<'a> {
    instance: &'a ProblemInstance,
    policy: CapacityPolicy,
    prices: DualPrices,
    ledger: CapacityLedger,
    sum_delta: f64,
    rejections: OnsiteRejectionCounters,
    keys: Vec<(f64, u32)>,
    n_for: Vec<u32>,
    weight_for: Vec<f64>,
    cost_for: Vec<f64>,
}

impl<'a> UninstrumentedOnsitePrimalDual<'a> {
    /// Creates the scheduler with all dual prices at zero.
    ///
    /// # Errors
    ///
    /// Returns an error if a scaling factor below 1 is given.
    pub fn new(instance: &'a ProblemInstance, policy: CapacityPolicy) -> Result<Self, VnfrelError> {
        if let CapacityPolicy::Scaled(s) = policy {
            let valid = s.is_finite() && s >= 1.0;
            if !valid {
                return Err(VnfrelError::InvalidParameter("scaling factor must be ≥ 1"));
            }
        }
        let m = instance.cloudlet_count();
        let t = instance.horizon().len();
        Ok(UninstrumentedOnsitePrimalDual {
            instance,
            policy,
            prices: DualPrices::new(m, t),
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            sum_delta: 0.0,
            rejections: OnsiteRejectionCounters::default(),
            keys: Vec::with_capacity(m),
            n_for: vec![0; m],
            weight_for: vec![0.0; m],
            cost_for: vec![0.0; m],
        })
    }

    /// The dual objective `Σ_{t,j} cap_j·λ_{tj} + Σ_i δ_i`.
    pub fn dual_objective(&self) -> f64 {
        let lambda_part: f64 = (0..self.prices.cloudlet_count())
            .map(|j| self.ledger.capacity(CloudletId(j)) * self.prices.row_total(j))
            .sum();
        lambda_part + self.sum_delta
    }
}

impl OnlineScheduler for UninstrumentedOnsitePrimalDual<'_> {
    fn name(&self) -> &'static str {
        "alg1-primal-dual-uninstrumented"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OnSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let compute = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v.compute() as f64,
            None => return Decision::Reject,
        };
        let req_rel = request.reliability_requirement();
        let first = request.arrival();
        let last = first + request.duration() - 1;

        self.keys.clear();
        let mut best_unrestricted: Option<f64> = None;
        for j in 0..self.prices.cloudlet_count() {
            let Some(n) = self
                .instance
                .onsite_instances_for(request.vnf(), CloudletId(j), req_rel)
            else {
                continue;
            };
            let weight = f64::from(n) * compute;
            let cost = weight * self.prices.window_sum(j, first, last);
            if best_unrestricted.is_none_or(|c| cost < c) {
                best_unrestricted = Some(cost);
            }
            self.n_for[j] = n;
            self.weight_for[j] = weight;
            self.cost_for[j] = cost;
            self.keys.push((cost, j as u32));
        }

        if let Some(min_cost) = best_unrestricted {
            self.sum_delta += (request.payment() - min_cost).max(0.0);
        }

        if self.keys.is_empty() {
            self.rejections.no_eligible_cloudlet += 1;
            return Decision::Reject;
        }

        if let Some(min_cost) = best_unrestricted {
            if request.payment() - min_cost <= 0.0 {
                self.rejections.payment_test += 1;
                return Decision::Reject;
            }
        }

        let policy = self.policy;
        let mut best: Option<usize> = None;
        let mut it = CheapestFirst::new(&mut self.keys);
        while let Some(j32) = it.next() {
            let j = j32 as usize;
            let gate = match policy {
                CapacityPolicy::Enforce => self.weight_for[j],
                CapacityPolicy::AllowViolations => 0.0,
                CapacityPolicy::Scaled(s) => self.weight_for[j] * s,
            };
            if gate > 0.0 && !self.ledger.fits_window(CloudletId(j), first, last, gate) {
                continue;
            }
            best = Some(j);
            break;
        }
        let Some(j) = best else {
            self.rejections.capacity_gate += 1;
            return Decision::Reject;
        };
        let (n, weight, cost) = (self.n_for[j], self.weight_for[j], self.cost_for[j]);
        if request.payment() - cost <= 0.0 {
            self.rejections.payment_test += 1;
            return Decision::Reject;
        }

        self.ledger
            .charge_window(CloudletId(j), first, last, weight);
        let cap = self.ledger.capacity(CloudletId(j));
        let d = request.duration() as f64;
        let pay = request.payment();
        self.prices.update_window(j, first, last, |l| {
            l * (1.0 + weight / cap) + weight * pay / (d * cap)
        });
        Decision::Admit(Placement::OnSite {
            cloudlet: CloudletId(j),
            instances: n,
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

/// Algorithm 2 without the trace-sink parameter.
#[derive(Debug)]
pub struct UninstrumentedOffsitePrimalDual<'a> {
    instance: &'a ProblemInstance,
    prices: DualPrices,
    ledger: CapacityLedger,
    sum_delta: f64,
    rejections: OffsiteRejectionCounters,
    keys: Vec<(f64, u32)>,
    selected: Vec<(usize, f64)>,
}

impl<'a> UninstrumentedOffsitePrimalDual<'a> {
    /// Creates the scheduler with all dual prices at zero.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        let m = instance.cloudlet_count();
        let t = instance.horizon().len();
        UninstrumentedOffsitePrimalDual {
            instance,
            prices: DualPrices::new(m, t),
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            sum_delta: 0.0,
            rejections: OffsiteRejectionCounters::default(),
            keys: Vec::with_capacity(m),
            selected: Vec::with_capacity(m),
        }
    }

    /// The accumulated dual objective `Σ cap_j·λ_{tj} + Σ δ_i`.
    pub fn dual_objective(&self) -> f64 {
        let lambda_part: f64 = (0..self.prices.cloudlet_count())
            .map(|j| self.ledger.capacity(CloudletId(j)) * self.prices.row_total(j))
            .sum();
        lambda_part + self.sum_delta
    }
}

impl OnlineScheduler for UninstrumentedOffsitePrimalDual<'_> {
    fn name(&self) -> &'static str {
        "alg2-primal-dual-uninstrumented"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OffSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let compute = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v.compute() as f64,
            None => return Decision::Reject,
        };
        let ln_target = request.reliability_requirement().failure().ln();
        let first = request.arrival();
        let last = first + request.duration() - 1;

        self.keys.clear();
        let mut min_ratio = f64::INFINITY;
        for j in 0..self.prices.cloudlet_count() {
            let ln_coef = self.instance.offsite_ln_coef(request.vnf(), CloudletId(j));
            let lambda_sum = self.prices.window_sum(j, first, last);
            let ratio = lambda_sum / (-ln_coef);
            min_ratio = min_ratio.min(ratio);
            if request.payment() + ln_target * compute * ratio <= 0.0 {
                continue;
            }
            self.keys.push((ratio, j as u32));
        }
        if min_ratio.is_finite() {
            self.sum_delta += (request.payment() + ln_target * compute * min_ratio).max(0.0);
        }
        if self.keys.is_empty() {
            self.rejections.payment_test += 1;
            return Decision::Reject;
        }

        self.selected.clear();
        let mut ln_sum = 0.0;
        {
            let instance = self.instance;
            let vnf_id = request.vnf();
            let ledger = &self.ledger;
            let selected = &mut self.selected;
            let mut it = CheapestFirst::new(&mut self.keys);
            while let Some(j32) = it.next() {
                let j = j32 as usize;
                if !ledger.fits_window(CloudletId(j), first, last, compute) {
                    continue;
                }
                let ln_coef = instance.offsite_ln_coef(vnf_id, CloudletId(j));
                selected.push((j, ln_coef));
                ln_sum += ln_coef;
                if ln_sum <= ln_target + 1e-12 {
                    break;
                }
            }
        }
        if ln_sum > ln_target + 1e-12 {
            self.rejections.reliability_unreachable += 1;
            return Decision::Reject;
        }

        let d = request.duration() as f64;
        let pay = request.payment();
        for i in 0..self.selected.len() {
            let (j, ln_coef) = self.selected[i];
            self.ledger
                .charge_window(CloudletId(j), first, last, compute);
            let cap = self.ledger.capacity(CloudletId(j));
            let factor = ln_target * compute / (ln_coef * cap);
            self.prices
                .update_window(j, first, last, |l| l * (1.0 + factor) + factor * pay / d);
        }
        Decision::Admit(Placement::OffSite {
            cloudlets: self.selected.iter().map(|&(j, _)| CloudletId(j)).collect(),
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

/// On-site greedy without the trace-sink parameter.
#[derive(Debug)]
pub struct UninstrumentedOnsiteGreedy<'a> {
    instance: &'a ProblemInstance,
    order: Vec<CloudletId>,
    ledger: CapacityLedger,
}

impl<'a> UninstrumentedOnsiteGreedy<'a> {
    /// Creates the greedy scheduler.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        let mut order: Vec<CloudletId> = instance.network().cloudlets().map(|c| c.id()).collect();
        order.sort_by(|&a, &b| {
            let ra = instance
                .network()
                .cloudlet(a)
                .expect("valid id")
                .reliability();
            let rb = instance
                .network()
                .cloudlet(b)
                .expect("valid id")
                .reliability();
            rb.cmp(&ra).then(a.index().cmp(&b.index()))
        });
        UninstrumentedOnsiteGreedy {
            instance,
            order,
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
        }
    }
}

impl OnlineScheduler for UninstrumentedOnsiteGreedy<'_> {
    fn name(&self) -> &'static str {
        "greedy-onsite-uninstrumented"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OnSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let compute = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v.compute() as f64,
            None => return Decision::Reject,
        };
        let first = request.arrival();
        let last = first + request.duration() - 1;
        for &cid in &self.order {
            let Some(n) = self.instance.onsite_instances_for(
                request.vnf(),
                cid,
                request.reliability_requirement(),
            ) else {
                break;
            };
            let weight = f64::from(n) * compute;
            if self.ledger.fits_window(cid, first, last, weight) {
                self.ledger.charge_window(cid, first, last, weight);
                return Decision::Admit(Placement::OnSite {
                    cloudlet: cid,
                    instances: n,
                });
            }
        }
        Decision::Reject
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

/// Off-site greedy without the trace-sink parameter.
#[derive(Debug)]
pub struct UninstrumentedOffsiteGreedy<'a> {
    instance: &'a ProblemInstance,
    order: Vec<CloudletId>,
    ledger: CapacityLedger,
    selected: Vec<CloudletId>,
}

impl<'a> UninstrumentedOffsiteGreedy<'a> {
    /// Creates the greedy scheduler.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        let mut order: Vec<CloudletId> = instance.network().cloudlets().map(|c| c.id()).collect();
        order.sort_by(|&a, &b| {
            let ra = instance
                .network()
                .cloudlet(a)
                .expect("valid id")
                .reliability();
            let rb = instance
                .network()
                .cloudlet(b)
                .expect("valid id")
                .reliability();
            rb.cmp(&ra).then(a.index().cmp(&b.index()))
        });
        UninstrumentedOffsiteGreedy {
            instance,
            order,
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            selected: Vec::new(),
        }
    }
}

impl OnlineScheduler for UninstrumentedOffsiteGreedy<'_> {
    fn name(&self) -> &'static str {
        "greedy-offsite-uninstrumented"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OffSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let compute = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v.compute() as f64,
            None => return Decision::Reject,
        };
        let ln_target = request.reliability_requirement().failure().ln();
        let first = request.arrival();
        let last = first + request.duration() - 1;

        self.selected.clear();
        let mut ln_sum = 0.0;
        for &cid in &self.order {
            if !self.ledger.fits_window(cid, first, last, compute) {
                continue;
            }
            ln_sum += self.instance.offsite_ln_coef(request.vnf(), cid);
            self.selected.push(cid);
            if ln_sum <= ln_target + 1e-12 {
                break;
            }
        }
        if ln_sum > ln_target + 1e-12 {
            return Decision::Reject;
        }
        for &cid in &self.selected {
            self.ledger.charge_window(cid, first, last, compute);
        }
        Decision::Admit(Placement::OffSite {
            cloudlets: self.selected.clone(),
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}
