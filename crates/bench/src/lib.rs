//! Shared experiment harness for regenerating the paper's figures.
//!
//! Every figure binary (`fig1a`, `fig1b`, `fig2a`, `fig2b`,
//! `ablation_scaling`, `failure_validation`) and every criterion bench
//! builds its scenarios through this crate so parameters stay consistent
//! with `DESIGN.md` §4:
//!
//! * topology: Abilene (Internet2) with cloudlets on half the APs,
//! * cloudlet reliabilities in `[rc_max / K, rc_max]`, `rc_max = 0.9999`,
//! * 10-type VNF catalog per Kong et al.,
//! * payment rates in `[pr_max / H, pr_max]`, `pr_max = 10`, default
//!   `H = 10` (the top of the paper's Figure 2(a) sweep),
//! * horizon of 16 slots, durations 1–8, reliability requirements in
//!   `[0.9, 0.95]`,
//! * cloudlet capacities 8–12 computing units — small relative to the
//!   request volume so the 100→800 sweep crosses from abundance into deep
//!   scarcity, the regime where the paper's Figure 1 separation between
//!   the primal-dual algorithms and greedy appears (the paper's absolute
//!   capacities are not published; `EXPERIMENTS.md` documents this
//!   calibration).
//!
//! # Performance architecture
//!
//! Sweeps are deduplicated and parallel:
//!
//! * [`ScenarioBase`] materializes the topology and
//!   [`ProblemInstance`] once per `(K, seed)` and snapshots the RNG, so
//!   every request-count / payment-band variation reuses them and only
//!   regenerates the workload — bit-identical to rebuilding from scratch
//!   because the generator's draws come after the topology draws;
//! * each `(point, seed)` task builds **one** scenario and runs every
//!   algorithm of the figure on it (the pre-optimization harness rebuilt
//!   the scenario per algorithm);
//! * tasks fan out over [`mec_sim::parallel::parallel_map`] scoped
//!   threads with a deterministic ordered merge, so any `threads` value
//!   yields the same tables ([`legacy`] keeps a faithful serial copy of
//!   the old harness as the speedup baseline).

pub mod legacy;
pub mod uninstrumented;

use mec_sim::experiment::SweepTable;
use mec_sim::parallel::parallel_map;
use mec_topology::generators::CloudletPlacement;
use mec_topology::zoo;
use mec_workload::{Horizon, Request, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::offline::OfflineConfig;
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{run_online, validate_schedule, OnlineScheduler, ProblemInstance, Scheme};

/// Maximum cloudlet reliability (`rc_max`), fixed across the K sweep.
pub const RC_MAX: f64 = 0.9999;
/// Maximum payment rate (`pr_max`), fixed across the H sweep.
pub const PR_MAX: f64 = 10.0;
/// Slots in the monitoring horizon.
pub const HORIZON: usize = 16;

/// Scenario parameters for one experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioParams {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Payment-rate variation `H = pr_max / pr_min` (≥ 1).
    pub h_ratio: f64,
    /// Cloudlet-reliability variation `K = rc_max / rc_min` (≥ 1).
    pub k_ratio: f64,
    /// RNG seed (controls topology placement and the workload).
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            requests: 200,
            h_ratio: 10.0,
            k_ratio: 1.01,
            seed: 1,
        }
    }
}

/// The expensive, workload-independent part of a scenario: topology and
/// [`ProblemInstance`] for one `(K, seed)` pair, plus the RNG state
/// right after the topology draws.
///
/// The request generator consumes the RNG *after* all topology draws, so
/// [`ScenarioBase::scenario`] produces streams bit-identical to a full
/// [`Scenario::build`] with the same parameters while skipping the
/// topology materialization and reliability-table precomputation.
#[derive(Debug)]
pub struct ScenarioBase {
    instance: ProblemInstance,
    /// RNG state after the topology draws, before any workload draw.
    rng: ChaCha8Rng,
}

impl ScenarioBase {
    /// Materializes the topology and instance for `(k_ratio, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on internal parameter errors — scenario parameters are
    /// compile-time constants in the harness, so failures indicate bugs.
    pub fn new(k_ratio: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rc_min = (RC_MAX / k_ratio).clamp(0.5, RC_MAX);
        let placement = CloudletPlacement {
            fraction: 0.5,
            capacity: (8, 12),
            reliability: (rc_min, RC_MAX),
        };
        let network = zoo::abilene()
            .into_network(&placement, &mut rng)
            .expect("abilene materializes");
        let instance = ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(HORIZON))
            .expect("valid instance");
        ScenarioBase { instance, rng }
    }

    /// Generates the workload phase for `(requests, h_ratio)` on top of
    /// this base.
    ///
    /// # Panics
    ///
    /// Panics on internal parameter errors, as [`ScenarioBase::new`].
    pub fn scenario(&self, requests: usize, h_ratio: f64) -> Scenario {
        let mut rng = self.rng.clone();
        let workload = RequestGenerator::new(self.instance.horizon())
            .reliability_band(0.9, 0.95)
            .expect("valid band")
            .payment_rate_band(PR_MAX / h_ratio, PR_MAX)
            .expect("valid band")
            .generate(requests, self.instance.catalog(), &mut rng)
            .expect("valid workload");
        Scenario {
            instance: self.instance.clone(),
            requests: workload,
        }
    }
}

/// A ready-to-run experiment point.
#[derive(Debug)]
pub struct Scenario {
    /// The problem instance (network + catalog + horizon).
    pub instance: ProblemInstance,
    /// The online request stream.
    pub requests: Vec<Request>,
}

impl Scenario {
    /// Builds the scenario for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics on internal parameter errors — scenario parameters are
    /// compile-time constants in the harness, so failures indicate bugs.
    pub fn build(params: &ScenarioParams) -> Self {
        ScenarioBase::new(params.k_ratio, params.seed).scenario(params.requests, params.h_ratio)
    }

    /// Runs a scheduler over this scenario and returns its revenue,
    /// asserting feasibility.
    ///
    /// # Panics
    ///
    /// Panics if the schedule fails validation — schedulers are required
    /// to produce feasible schedules.
    pub fn revenue_of<S: OnlineScheduler>(&self, scheduler: &mut S) -> f64 {
        let schedule = run_online(scheduler, &self.requests).expect("valid stream");
        let report = validate_schedule(
            &self.instance,
            &self.requests,
            &schedule,
            scheduler.scheme(),
        )
        .expect("validatable schedule");
        assert!(
            report.is_feasible(),
            "{} produced an infeasible schedule: {:?}",
            scheduler.name(),
            report.violations
        );
        schedule.revenue()
    }

    /// Revenue of Algorithm 1 (on-site primal-dual, capacity enforced).
    pub fn alg1_revenue(&self) -> f64 {
        let mut s =
            OnsitePrimalDual::new(&self.instance, CapacityPolicy::Enforce).expect("valid policy");
        self.revenue_of(&mut s)
    }

    /// Revenue of the on-site greedy baseline.
    pub fn greedy_onsite_revenue(&self) -> f64 {
        let mut s = OnsiteGreedy::new(&self.instance);
        self.revenue_of(&mut s)
    }

    /// Revenue of Algorithm 2 (off-site primal-dual).
    pub fn alg2_revenue(&self) -> f64 {
        let mut s = OffsitePrimalDual::new(&self.instance);
        self.revenue_of(&mut s)
    }

    /// Revenue of the off-site greedy baseline.
    pub fn greedy_offsite_revenue(&self) -> f64 {
        let mut s = OffsiteGreedy::new(&self.instance);
        self.revenue_of(&mut s)
    }

    /// Offline optimum (or its LP bound) for the given scheme.
    ///
    /// Exact branch-and-bound below `exact_below` requests; the LP
    /// relaxation bound at and above it (documented CPLEX substitution).
    ///
    /// # Panics
    ///
    /// Panics if the offline solver errors (scenario models are always
    /// well-formed).
    pub fn offline_revenue(&self, scheme: Scheme, exact_below: usize) -> f64 {
        let config = OfflineConfig {
            lp_only: self.requests.len() >= exact_below,
            ..OfflineConfig::default()
        };
        match scheme {
            Scheme::OnSite => {
                vnfrel::onsite::offline::solve(&self.instance, &self.requests, &config)
                    .expect("offline solve")
                    .revenue()
            }
            Scheme::OffSite => {
                vnfrel::offsite::offline::solve(&self.instance, &self.requests, &config)
                    .expect("offline solve")
                    .revenue()
            }
        }
    }
}

/// Averages a scenario metric over several seeds.
pub fn mean_revenue<F>(params: &ScenarioParams, seeds: &[u64], f: F) -> f64
where
    F: Fn(&Scenario) -> f64,
{
    let mut total = 0.0;
    for &seed in seeds {
        let s = Scenario::build(&ScenarioParams { seed, ..*params });
        total += f(&s);
    }
    total / seeds.len().max(1) as f64
}

/// Parses a `--quiet`/`-q` flag from the process arguments.
///
/// The figure and ablation binaries keep result tables on stdout and
/// route banners/progress through [`note`] to stderr, so piping a bin
/// into a file or a plotting script captures only the data; `--quiet`
/// silences the stderr side entirely.
pub fn quiet_from_args() -> bool {
    std::env::args().any(|a| a == "--quiet" || a == "-q")
}

/// Prints a banner/progress line to stderr unless `quiet` is set.
pub fn note(quiet: bool, msg: impl std::fmt::Display) {
    if !quiet {
        eprintln!("{msg}");
    }
}

/// Parses a `--threads N` argument from the process arguments, falling
/// back to the machine's available parallelism (`--threads 1` forces the
/// serial path).
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let explicit = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    mec_sim::parallel::resolve_threads(explicit)
}

/// Figure 1(a)/1(b): revenue vs number of requests.
///
/// One scenario per `(size, seed)` task shared by the primal-dual and
/// greedy runs; tasks fan out over `threads` workers with an ordered
/// merge, so the table is identical at any thread count.
pub fn fig1_sweep(
    scheme: Scheme,
    sizes: &[usize],
    seeds: &[u64],
    with_optimal: bool,
    exact_below: usize,
    threads: usize,
) -> SweepTable {
    let (alg_name, greedy_name) = match scheme {
        Scheme::OnSite => ("Algorithm 1", "Greedy"),
        Scheme::OffSite => ("Algorithm 2", "Greedy"),
    };
    let mut columns = vec![alg_name.to_string(), greedy_name.to_string()];
    if with_optimal {
        columns.push("Optimal".to_string());
    }
    let default = ScenarioParams::default();
    let bases: Vec<ScenarioBase> = seeds
        .iter()
        .map(|&s| ScenarioBase::new(default.k_ratio, s))
        .collect();
    let tasks: Vec<(usize, usize)> = sizes
        .iter()
        .enumerate()
        .flat_map(|(si, _)| (0..seeds.len()).map(move |wi| (si, wi)))
        .collect();
    let results = parallel_map(&tasks, threads, |&(si, wi)| {
        let s = bases[wi].scenario(sizes[si], default.h_ratio);
        let alg = match scheme {
            Scheme::OnSite => s.alg1_revenue(),
            Scheme::OffSite => s.alg2_revenue(),
        };
        let greedy = match scheme {
            Scheme::OnSite => s.greedy_onsite_revenue(),
            Scheme::OffSite => s.greedy_offsite_revenue(),
        };
        // OPT over the first seed only: the ILP/LP is the expensive part
        // and seed variance is small relative to the curve.
        let opt = (with_optimal && wi == 0).then(|| s.offline_revenue(scheme, exact_below));
        (alg, greedy, opt)
    });

    let mut table = SweepTable::new("requests", "revenue", columns);
    let w = seeds.len().max(1) as f64;
    for (si, &n) in sizes.iter().enumerate() {
        let point = &results[si * seeds.len()..(si + 1) * seeds.len()];
        let alg = point.iter().map(|r| r.0).sum::<f64>() / w;
        let greedy = point.iter().map(|r| r.1).sum::<f64>() / w;
        let mut row = vec![alg, greedy];
        if with_optimal {
            row.push(point[0].2.expect("seed 0 computes OPT"));
        }
        table.push_row(n as f64, row);
    }
    table
}

/// Revenues of all four online algorithms on one scenario:
/// `(alg1, greedy-onsite, alg2, greedy-offsite)`.
pub fn all_algorithm_revenues(s: &Scenario) -> (f64, f64, f64, f64) {
    (
        s.alg1_revenue(),
        s.greedy_onsite_revenue(),
        s.alg2_revenue(),
        s.greedy_offsite_revenue(),
    )
}

/// Both Figure 1 panels in one pass: every `(size, seed)` scenario is
/// built once and all four online algorithms run on it. Returns the
/// `(on-site, off-site)` tables (no offline column). This is the
/// configuration `bench_report` times, where scenario construction is
/// amortized across four algorithms instead of being repeated per
/// algorithm per panel.
pub fn fig1_both_sweep(sizes: &[usize], seeds: &[u64], threads: usize) -> (SweepTable, SweepTable) {
    let default = ScenarioParams::default();
    let bases: Vec<ScenarioBase> = seeds
        .iter()
        .map(|&s| ScenarioBase::new(default.k_ratio, s))
        .collect();
    let tasks: Vec<(usize, usize)> = sizes
        .iter()
        .enumerate()
        .flat_map(|(si, _)| (0..seeds.len()).map(move |wi| (si, wi)))
        .collect();
    let results = parallel_map(&tasks, threads, |&(si, wi)| {
        let s = bases[wi].scenario(sizes[si], default.h_ratio);
        all_algorithm_revenues(&s)
    });

    let mut onsite = SweepTable::new(
        "requests",
        "revenue",
        vec!["Algorithm 1".into(), "Greedy".into()],
    );
    let mut offsite = SweepTable::new(
        "requests",
        "revenue",
        vec!["Algorithm 2".into(), "Greedy".into()],
    );
    let w = seeds.len().max(1) as f64;
    for (si, &n) in sizes.iter().enumerate() {
        let point = &results[si * seeds.len()..(si + 1) * seeds.len()];
        onsite.push_row(
            n as f64,
            vec![
                point.iter().map(|r| r.0).sum::<f64>() / w,
                point.iter().map(|r| r.1).sum::<f64>() / w,
            ],
        );
        offsite.push_row(
            n as f64,
            vec![
                point.iter().map(|r| r.2).sum::<f64>() / w,
                point.iter().map(|r| r.3).sum::<f64>() / w,
            ],
        );
    }
    (onsite, offsite)
}

/// Figure 2(a): revenue vs payment-rate variation `H` (both schemes'
/// primal-dual algorithms and the on-site greedy baseline).
pub fn fig2a_sweep(h_values: &[f64], requests: usize, seeds: &[u64], threads: usize) -> SweepTable {
    let default = ScenarioParams::default();
    let bases: Vec<ScenarioBase> = seeds
        .iter()
        .map(|&s| ScenarioBase::new(default.k_ratio, s))
        .collect();
    let tasks: Vec<(usize, usize)> = h_values
        .iter()
        .enumerate()
        .flat_map(|(hi, _)| (0..seeds.len()).map(move |wi| (hi, wi)))
        .collect();
    let results = parallel_map(&tasks, threads, |&(hi, wi)| {
        let s = bases[wi].scenario(requests, h_values[hi]);
        (
            s.alg1_revenue(),
            s.alg2_revenue(),
            s.greedy_onsite_revenue(),
        )
    });

    let mut table = SweepTable::new(
        "H",
        "revenue",
        vec![
            "Algorithm 1".into(),
            "Algorithm 2".into(),
            "Greedy (on-site)".into(),
        ],
    );
    let w = seeds.len().max(1) as f64;
    for (hi, &h) in h_values.iter().enumerate() {
        let point = &results[hi * seeds.len()..(hi + 1) * seeds.len()];
        table.push_row(
            h,
            vec![
                point.iter().map(|r| r.0).sum::<f64>() / w,
                point.iter().map(|r| r.1).sum::<f64>() / w,
                point.iter().map(|r| r.2).sum::<f64>() / w,
            ],
        );
    }
    table
}

/// Figure 2(b): revenue vs cloudlet-reliability variation `K` (off-site
/// algorithms, where the greedy collapse is visible).
pub fn fig2b_sweep(k_values: &[f64], requests: usize, seeds: &[u64], threads: usize) -> SweepTable {
    let default = ScenarioParams::default();
    let tasks: Vec<(usize, usize)> = k_values
        .iter()
        .enumerate()
        .flat_map(|(ki, _)| (0..seeds.len()).map(move |wi| (ki, wi)))
        .collect();
    // K changes the topology itself, so each task owns its base.
    let results = parallel_map(&tasks, threads, |&(ki, wi)| {
        let s = ScenarioBase::new(k_values[ki], seeds[wi]).scenario(requests, default.h_ratio);
        (s.alg2_revenue(), s.greedy_offsite_revenue())
    });

    let mut table = SweepTable::new(
        "K",
        "revenue",
        vec!["Algorithm 2".into(), "Greedy (off-site)".into()],
    );
    let w = seeds.len().max(1) as f64;
    for (ki, &k) in k_values.iter().enumerate() {
        let point = &results[ki * seeds.len()..(ki + 1) * seeds.len()];
        table.push_row(
            k,
            vec![
                point.iter().map(|r| r.0).sum::<f64>() / w,
                point.iter().map(|r| r.1).sum::<f64>() / w,
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_and_runs() {
        let s = Scenario::build(&ScenarioParams {
            requests: 40,
            ..ScenarioParams::default()
        });
        assert_eq!(s.requests.len(), 40);
        assert!(s.instance.cloudlet_count() >= 1);
        let a1 = s.alg1_revenue();
        let g1 = s.greedy_onsite_revenue();
        let a2 = s.alg2_revenue();
        let g2 = s.greedy_offsite_revenue();
        for v in [a1, g1, a2, g2] {
            assert!(v >= 0.0 && v.is_finite());
        }
    }

    #[test]
    fn base_reuse_matches_fresh_build() {
        // The cached-base path must be bit-identical to building from
        // scratch: same topology, same request stream.
        let params = ScenarioParams {
            requests: 60,
            h_ratio: 4.0,
            k_ratio: 1.05,
            seed: 11,
        };
        let fresh = Scenario::build(&params);
        let base = ScenarioBase::new(params.k_ratio, params.seed);
        let cached = base.scenario(params.requests, params.h_ratio);
        let also = base.scenario(params.requests, params.h_ratio); // reuse is repeatable
        assert_eq!(fresh.requests, cached.requests);
        assert_eq!(cached.requests, also.requests);
        assert_eq!(
            fresh.instance.cloudlet_count(),
            cached.instance.cloudlet_count()
        );
    }

    #[test]
    fn k_ratio_lowers_min_reliability() {
        let tight = Scenario::build(&ScenarioParams {
            k_ratio: 1.0,
            seed: 3,
            ..ScenarioParams::default()
        });
        let wide = Scenario::build(&ScenarioParams {
            k_ratio: 1.1,
            seed: 3,
            ..ScenarioParams::default()
        });
        let min_rel = |s: &Scenario| {
            s.instance
                .network()
                .cloudlets()
                .map(|c| c.reliability().value())
                .fold(1.0f64, f64::min)
        };
        assert!(min_rel(&wide) < min_rel(&tight));
    }

    #[test]
    fn fig_sweeps_have_expected_shape() {
        let sizes = [30, 60];
        let table = fig1_sweep(Scheme::OnSite, &sizes, &[1], true, 1_000, 1);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns.len(), 3);
        // OPT dominates the online algorithms at each point.
        for row in 0..table.rows.len() {
            let opt = table.value(row, "Optimal").unwrap();
            assert!(table.value(row, "Algorithm 1").unwrap() <= opt + 1e-6);
            assert!(table.value(row, "Greedy").unwrap() <= opt + 1e-6);
        }
    }

    #[test]
    fn fig2_sweeps_build() {
        let t = fig2a_sweep(&[1.0, 5.0], 30, &[1], 1);
        assert_eq!(t.rows.len(), 2);
        let t = fig2b_sweep(&[1.0, 1.05], 30, &[1], 1);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn fig1_both_matches_per_scheme_sweeps() {
        let sizes = [25, 50];
        let seeds = [1, 2];
        let (on, off) = fig1_both_sweep(&sizes, &seeds, 1);
        let on_ref = fig1_sweep(Scheme::OnSite, &sizes, &seeds, false, 1_000, 1);
        let off_ref = fig1_sweep(Scheme::OffSite, &sizes, &seeds, false, 1_000, 1);
        for r in 0..sizes.len() {
            assert_eq!(on.rows[r], on_ref.rows[r]);
            assert_eq!(off.rows[r], off_ref.rows[r]);
        }
    }
}
