//! Shared experiment harness for regenerating the paper's figures.
//!
//! Every figure binary (`fig1a`, `fig1b`, `fig2a`, `fig2b`,
//! `ablation_scaling`, `failure_validation`) and every criterion bench
//! builds its scenarios through this crate so parameters stay consistent
//! with `DESIGN.md` §4:
//!
//! * topology: Abilene (Internet2) with cloudlets on half the APs,
//! * cloudlet reliabilities in `[rc_max / K, rc_max]`, `rc_max = 0.9999`,
//! * 10-type VNF catalog per Kong et al.,
//! * payment rates in `[pr_max / H, pr_max]`, `pr_max = 10`, default
//!   `H = 10` (the top of the paper's Figure 2(a) sweep),
//! * horizon of 16 slots, durations 1–8, reliability requirements in
//!   `[0.9, 0.95]`,
//! * cloudlet capacities 8–12 computing units — small relative to the
//!   request volume so the 100→800 sweep crosses from abundance into deep
//!   scarcity, the regime where the paper's Figure 1 separation between
//!   the primal-dual algorithms and greedy appears (the paper's absolute
//!   capacities are not published; `EXPERIMENTS.md` documents this
//!   calibration).

use mec_sim::experiment::SweepTable;
use mec_sim::Simulation;
use mec_topology::generators::CloudletPlacement;
use mec_topology::zoo;
use mec_workload::{Horizon, Request, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::offline::OfflineConfig;
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, ProblemInstance, Scheme};

/// Maximum cloudlet reliability (`rc_max`), fixed across the K sweep.
pub const RC_MAX: f64 = 0.9999;
/// Maximum payment rate (`pr_max`), fixed across the H sweep.
pub const PR_MAX: f64 = 10.0;
/// Slots in the monitoring horizon.
pub const HORIZON: usize = 16;

/// Scenario parameters for one experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioParams {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Payment-rate variation `H = pr_max / pr_min` (≥ 1).
    pub h_ratio: f64,
    /// Cloudlet-reliability variation `K = rc_max / rc_min` (≥ 1).
    pub k_ratio: f64,
    /// RNG seed (controls topology placement and the workload).
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            requests: 200,
            h_ratio: 10.0,
            k_ratio: 1.01,
            seed: 1,
        }
    }
}

/// A ready-to-run experiment point.
#[derive(Debug)]
pub struct Scenario {
    /// The problem instance (network + catalog + horizon).
    pub instance: ProblemInstance,
    /// The online request stream.
    pub requests: Vec<Request>,
}

impl Scenario {
    /// Builds the scenario for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics on internal parameter errors — scenario parameters are
    /// compile-time constants in the harness, so failures indicate bugs.
    pub fn build(params: &ScenarioParams) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let rc_min = (RC_MAX / params.k_ratio).clamp(0.5, RC_MAX);
        let placement = CloudletPlacement {
            fraction: 0.5,
            capacity: (8, 12),
            reliability: (rc_min, RC_MAX),
        };
        let network = zoo::abilene()
            .into_network(&placement, &mut rng)
            .expect("abilene materializes");
        let instance = ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(HORIZON))
            .expect("valid instance");
        let requests = RequestGenerator::new(instance.horizon())
            .reliability_band(0.9, 0.95)
            .expect("valid band")
            .payment_rate_band(PR_MAX / params.h_ratio, PR_MAX)
            .expect("valid band")
            .generate(params.requests, instance.catalog(), &mut rng)
            .expect("valid workload");
        Scenario { instance, requests }
    }

    /// Runs a scheduler over this scenario and returns its revenue,
    /// asserting feasibility.
    ///
    /// # Panics
    ///
    /// Panics if the schedule fails validation — schedulers are required
    /// to produce feasible schedules.
    pub fn revenue_of<S: OnlineScheduler>(&self, scheduler: &mut S) -> f64 {
        let sim = Simulation::new(&self.instance, &self.requests).expect("valid scenario");
        let report = sim.run(scheduler).expect("run succeeds");
        assert!(
            report.validation.is_feasible(),
            "{} produced an infeasible schedule: {:?}",
            scheduler.name(),
            report.validation.violations
        );
        report.metrics.revenue
    }

    /// Revenue of Algorithm 1 (on-site primal-dual, capacity enforced).
    pub fn alg1_revenue(&self) -> f64 {
        let mut s =
            OnsitePrimalDual::new(&self.instance, CapacityPolicy::Enforce).expect("valid policy");
        self.revenue_of(&mut s)
    }

    /// Revenue of the on-site greedy baseline.
    pub fn greedy_onsite_revenue(&self) -> f64 {
        let mut s = OnsiteGreedy::new(&self.instance);
        self.revenue_of(&mut s)
    }

    /// Revenue of Algorithm 2 (off-site primal-dual).
    pub fn alg2_revenue(&self) -> f64 {
        let mut s = OffsitePrimalDual::new(&self.instance);
        self.revenue_of(&mut s)
    }

    /// Revenue of the off-site greedy baseline.
    pub fn greedy_offsite_revenue(&self) -> f64 {
        let mut s = OffsiteGreedy::new(&self.instance);
        self.revenue_of(&mut s)
    }

    /// Offline optimum (or its LP bound) for the given scheme.
    ///
    /// Exact branch-and-bound below `exact_below` requests; the LP
    /// relaxation bound at and above it (documented CPLEX substitution).
    ///
    /// # Panics
    ///
    /// Panics if the offline solver errors (scenario models are always
    /// well-formed).
    pub fn offline_revenue(&self, scheme: Scheme, exact_below: usize) -> f64 {
        let config = OfflineConfig {
            lp_only: self.requests.len() >= exact_below,
            ..OfflineConfig::default()
        };
        match scheme {
            Scheme::OnSite => {
                vnfrel::onsite::offline::solve(&self.instance, &self.requests, &config)
                    .expect("offline solve")
                    .revenue()
            }
            Scheme::OffSite => {
                vnfrel::offsite::offline::solve(&self.instance, &self.requests, &config)
                    .expect("offline solve")
                    .revenue()
            }
        }
    }
}

/// Averages a scenario metric over several seeds.
pub fn mean_revenue<F>(params: &ScenarioParams, seeds: &[u64], f: F) -> f64
where
    F: Fn(&Scenario) -> f64,
{
    let mut total = 0.0;
    for &seed in seeds {
        let s = Scenario::build(&ScenarioParams { seed, ..*params });
        total += f(&s);
    }
    total / seeds.len().max(1) as f64
}

/// Figure 1(a)/1(b): revenue vs number of requests.
pub fn fig1_sweep(
    scheme: Scheme,
    sizes: &[usize],
    seeds: &[u64],
    with_optimal: bool,
    exact_below: usize,
) -> SweepTable {
    let (alg_name, greedy_name) = match scheme {
        Scheme::OnSite => ("Algorithm 1", "Greedy"),
        Scheme::OffSite => ("Algorithm 2", "Greedy"),
    };
    let mut columns = vec![alg_name.to_string(), greedy_name.to_string()];
    if with_optimal {
        columns.push("Optimal".to_string());
    }
    let mut table = SweepTable::new("requests", "revenue", columns);
    for &n in sizes {
        let params = ScenarioParams {
            requests: n,
            ..ScenarioParams::default()
        };
        let alg = mean_revenue(&params, seeds, |s| match scheme {
            Scheme::OnSite => s.alg1_revenue(),
            Scheme::OffSite => s.alg2_revenue(),
        });
        let greedy = mean_revenue(&params, seeds, |s| match scheme {
            Scheme::OnSite => s.greedy_onsite_revenue(),
            Scheme::OffSite => s.greedy_offsite_revenue(),
        });
        let mut row = vec![alg, greedy];
        if with_optimal {
            // OPT over the first seed only: the ILP/LP is the expensive
            // part and seed variance is small relative to the curve.
            let s = Scenario::build(&ScenarioParams {
                seed: seeds[0],
                ..params
            });
            row.push(s.offline_revenue(scheme, exact_below));
        }
        table.push_row(n as f64, row);
    }
    table
}

/// Figure 2(a): revenue vs payment-rate variation `H` (both schemes'
/// primal-dual algorithms and the on-site greedy baseline).
pub fn fig2a_sweep(h_values: &[f64], requests: usize, seeds: &[u64]) -> SweepTable {
    let mut table = SweepTable::new(
        "H",
        "revenue",
        vec![
            "Algorithm 1".into(),
            "Algorithm 2".into(),
            "Greedy (on-site)".into(),
        ],
    );
    for &h in h_values {
        let params = ScenarioParams {
            requests,
            h_ratio: h,
            ..ScenarioParams::default()
        };
        table.push_row(
            h,
            vec![
                mean_revenue(&params, seeds, Scenario::alg1_revenue),
                mean_revenue(&params, seeds, Scenario::alg2_revenue),
                mean_revenue(&params, seeds, Scenario::greedy_onsite_revenue),
            ],
        );
    }
    table
}

/// Figure 2(b): revenue vs cloudlet-reliability variation `K` (off-site
/// algorithms, where the greedy collapse is visible).
pub fn fig2b_sweep(k_values: &[f64], requests: usize, seeds: &[u64]) -> SweepTable {
    let mut table = SweepTable::new(
        "K",
        "revenue",
        vec!["Algorithm 2".into(), "Greedy (off-site)".into()],
    );
    for &k in k_values {
        let params = ScenarioParams {
            requests,
            k_ratio: k,
            ..ScenarioParams::default()
        };
        table.push_row(
            k,
            vec![
                mean_revenue(&params, seeds, Scenario::alg2_revenue),
                mean_revenue(&params, seeds, Scenario::greedy_offsite_revenue),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_and_runs() {
        let s = Scenario::build(&ScenarioParams {
            requests: 40,
            ..ScenarioParams::default()
        });
        assert_eq!(s.requests.len(), 40);
        assert!(s.instance.cloudlet_count() >= 1);
        let a1 = s.alg1_revenue();
        let g1 = s.greedy_onsite_revenue();
        let a2 = s.alg2_revenue();
        let g2 = s.greedy_offsite_revenue();
        for v in [a1, g1, a2, g2] {
            assert!(v >= 0.0 && v.is_finite());
        }
    }

    #[test]
    fn k_ratio_lowers_min_reliability() {
        let tight = Scenario::build(&ScenarioParams {
            k_ratio: 1.0,
            seed: 3,
            ..ScenarioParams::default()
        });
        let wide = Scenario::build(&ScenarioParams {
            k_ratio: 1.1,
            seed: 3,
            ..ScenarioParams::default()
        });
        let min_rel = |s: &Scenario| {
            s.instance
                .network()
                .cloudlets()
                .map(|c| c.reliability().value())
                .fold(1.0f64, f64::min)
        };
        assert!(min_rel(&wide) < min_rel(&tight));
    }

    #[test]
    fn fig_sweeps_have_expected_shape() {
        let sizes = [30, 60];
        let table = fig1_sweep(Scheme::OnSite, &sizes, &[1], true, 1_000);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns.len(), 3);
        // OPT dominates the online algorithms at each point.
        for row in 0..table.rows.len() {
            let opt = table.value(row, "Optimal").unwrap();
            assert!(table.value(row, "Algorithm 1").unwrap() <= opt + 1e-6);
            assert!(table.value(row, "Greedy").unwrap() <= opt + 1e-6);
        }
    }

    #[test]
    fn fig2_sweeps_build() {
        let t = fig2a_sweep(&[1.0, 5.0], 30, &[1]);
        assert_eq!(t.rows.len(), 2);
        let t = fig2b_sweep(&[1.0, 1.05], 30, &[1]);
        assert_eq!(t.rows.len(), 2);
    }
}
