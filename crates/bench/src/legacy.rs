//! Faithful copies of the pre-optimization schedulers and harness.
//!
//! `bench_report` measures the speedup the flat-buffer / prefix-sum /
//! precomputed-table hot path delivers, so it needs the *old* code to
//! race against. This module preserves it verbatim (modulo visibility):
//!
//! * [`LegacyOnsitePrimalDual`] / [`LegacyOffsitePrimalDual`] — the
//!   nested `Vec<Vec<f64>>` dual grid, per-slot dual-cost loops,
//!   per-request closed-form `N_ij` / `ln(1 − r_f·r_c)` recomputation,
//!   and the off-site full sort;
//! * [`LegacyOnsiteGreedy`] / [`LegacyOffsiteGreedy`] — per-request
//!   closed-form recomputation in the greedy baselines;
//! * [`legacy_fig1_both`] — the pre-optimization Figure 1 harness shape:
//!   serial, one scenario build *per algorithm per seed* (four builds per
//!   point-seed across the two panels), revenue measured through the full
//!   [`Simulation`] engine.
//!
//! The equivalence suite (`tests/equivalence.rs`) holds both generations
//! to the same golden decision streams, so the race is between two
//! implementations of the *same* function.

use mec_sim::experiment::SweepTable;
use mec_sim::Simulation;
use mec_topology::CloudletId;
use mec_workload::Request;
use vnfrel::onsite::CapacityPolicy;
use vnfrel::reliability::{offsite_ln_coefficient, onsite_instances};
use vnfrel::{
    CapacityLedger, Decision, OnlineScheduler, Placement, ProblemInstance, Scheme, VnfrelError,
};

use crate::{Scenario, ScenarioParams};

/// Pre-optimization Algorithm 1: nested dual grid, per-slot cost sums,
/// closed-form `N_ij` per request.
#[derive(Debug)]
pub struct LegacyOnsitePrimalDual<'a> {
    instance: &'a ProblemInstance,
    policy: CapacityPolicy,
    /// λ[cloudlet][slot]
    lambda: Vec<Vec<f64>>,
    ledger: CapacityLedger,
    sum_delta: f64,
}

impl<'a> LegacyOnsitePrimalDual<'a> {
    /// Creates the scheduler with all dual prices at zero.
    ///
    /// # Errors
    ///
    /// Returns an error if a scaling factor below 1 is given.
    pub fn new(instance: &'a ProblemInstance, policy: CapacityPolicy) -> Result<Self, VnfrelError> {
        if let CapacityPolicy::Scaled(s) = policy {
            let valid = s.is_finite() && s >= 1.0;
            if !valid {
                return Err(VnfrelError::InvalidParameter("scaling factor must be ≥ 1"));
            }
        }
        let m = instance.cloudlet_count();
        let t = instance.horizon().len();
        Ok(LegacyOnsitePrimalDual {
            instance,
            policy,
            lambda: vec![vec![0.0; t]; m],
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            sum_delta: 0.0,
        })
    }

    /// The dual objective `Σ_{t,j} cap_j·λ_{tj} + Σ_i δ_i`.
    pub fn dual_objective(&self) -> f64 {
        let lambda_part: f64 = self
            .lambda
            .iter()
            .enumerate()
            .map(|(j, row)| self.ledger.capacity(CloudletId(j)) * row.iter().sum::<f64>())
            .sum();
        lambda_part + self.sum_delta
    }

    fn dual_cost(&self, request: &Request, j: usize, weight: f64) -> f64 {
        request
            .slots()
            .map(|t| weight * self.lambda[j][t])
            .sum::<f64>()
    }
}

impl OnlineScheduler for LegacyOnsitePrimalDual<'_> {
    fn name(&self) -> &'static str {
        "alg1-primal-dual-legacy"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OnSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let vnf = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v,
            None => return Decision::Reject,
        };
        let req_rel = request.reliability_requirement();
        let compute = vnf.compute() as f64;

        let mut best: Option<(usize, u32, f64, f64)> = None; // (j, n, weight, cost)
        let mut best_unrestricted: Option<f64> = None;
        for cloudlet in self.instance.network().cloudlets() {
            let j = cloudlet.id().index();
            let Some(n) = onsite_instances(vnf.reliability(), cloudlet.reliability(), req_rel)
            else {
                continue;
            };
            let weight = f64::from(n) * compute;
            let cost = self.dual_cost(request, j, weight);
            if best_unrestricted.is_none_or(|c| cost < c) {
                best_unrestricted = Some(cost);
            }
            let gate = match self.policy {
                CapacityPolicy::Enforce => weight,
                CapacityPolicy::AllowViolations => 0.0,
                CapacityPolicy::Scaled(s) => weight * s,
            };
            if gate > 0.0 && !self.ledger.fits(cloudlet.id(), request.slots(), gate) {
                continue;
            }
            match best {
                Some((_, _, _, c)) if c <= cost => {}
                _ => best = Some((j, n, weight, cost)),
            }
        }

        if let Some(min_cost) = best_unrestricted {
            self.sum_delta += (request.payment() - min_cost).max(0.0);
        }

        let Some((j, n, weight, cost)) = best else {
            return Decision::Reject;
        };
        if request.payment() - cost <= 0.0 {
            return Decision::Reject;
        }

        self.ledger.charge(CloudletId(j), request.slots(), weight);
        let cap = self.ledger.capacity(CloudletId(j));
        let d = request.duration() as f64;
        for t in request.slots() {
            let l = self.lambda[j][t];
            self.lambda[j][t] = l * (1.0 + weight / cap) + weight * request.payment() / (d * cap);
        }
        Decision::Admit(Placement::OnSite {
            cloudlet: CloudletId(j),
            instances: n,
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

/// Pre-optimization Algorithm 2: nested dual grid, per-slot λ sums,
/// per-request `ln(1 − r_f·r_c)` recomputation, full candidate sort.
#[derive(Debug)]
pub struct LegacyOffsitePrimalDual<'a> {
    instance: &'a ProblemInstance,
    /// λ[cloudlet][slot]
    lambda: Vec<Vec<f64>>,
    ledger: CapacityLedger,
    sum_delta: f64,
}

impl<'a> LegacyOffsitePrimalDual<'a> {
    /// Creates the scheduler with all dual prices at zero.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        let m = instance.cloudlet_count();
        let t = instance.horizon().len();
        LegacyOffsitePrimalDual {
            instance,
            lambda: vec![vec![0.0; t]; m],
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            sum_delta: 0.0,
        }
    }

    /// The accumulated dual objective `Σ cap_j·λ_{tj} + Σ δ_i`.
    pub fn dual_objective(&self) -> f64 {
        let lambda_part: f64 = self
            .lambda
            .iter()
            .enumerate()
            .map(|(j, row)| self.ledger.capacity(CloudletId(j)) * row.iter().sum::<f64>())
            .sum();
        lambda_part + self.sum_delta
    }
}

impl OnlineScheduler for LegacyOffsitePrimalDual<'_> {
    fn name(&self) -> &'static str {
        "alg2-primal-dual-legacy"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OffSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let Some(vnf) = self.instance.catalog().get(request.vnf()) else {
            return Decision::Reject;
        };
        let compute = vnf.compute() as f64;
        let ln_target = request.reliability_requirement().failure().ln();

        let mut candidates: Vec<(f64, usize, f64)> = Vec::new(); // (ratio, j, ln_coef)
        let mut min_ratio = f64::INFINITY;
        for cloudlet in self.instance.network().cloudlets() {
            let j = cloudlet.id().index();
            let ln_coef = offsite_ln_coefficient(vnf.reliability(), cloudlet.reliability());
            let lambda_sum: f64 = request.slots().map(|t| self.lambda[j][t]).sum();
            let ratio = lambda_sum / (-ln_coef);
            min_ratio = min_ratio.min(ratio);
            if request.payment() + ln_target * compute * ratio <= 0.0 {
                continue;
            }
            candidates.push((ratio, j, ln_coef));
        }
        if min_ratio.is_finite() {
            self.sum_delta += (request.payment() + ln_target * compute * min_ratio).max(0.0);
        }
        if candidates.is_empty() {
            return Decision::Reject;
        }
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });

        let mut selected: Vec<(usize, f64)> = Vec::new();
        let mut ln_sum = 0.0;
        for &(_, j, ln_coef) in &candidates {
            if !self.ledger.fits(CloudletId(j), request.slots(), compute) {
                continue;
            }
            selected.push((j, ln_coef));
            ln_sum += ln_coef;
            if ln_sum <= ln_target + 1e-12 {
                break;
            }
        }
        if ln_sum > ln_target + 1e-12 {
            return Decision::Reject;
        }

        let d = request.duration() as f64;
        for &(j, ln_coef) in &selected {
            self.ledger.charge(CloudletId(j), request.slots(), compute);
            let cap = self.ledger.capacity(CloudletId(j));
            let factor = ln_target * compute / (ln_coef * cap);
            for t in request.slots() {
                let l = self.lambda[j][t];
                self.lambda[j][t] = l * (1.0 + factor) + factor * request.payment() / d;
            }
        }
        Decision::Admit(Placement::OffSite {
            cloudlets: selected.iter().map(|&(j, _)| CloudletId(j)).collect(),
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

fn reliability_order(instance: &ProblemInstance) -> Vec<CloudletId> {
    let mut order: Vec<CloudletId> = instance.network().cloudlets().map(|c| c.id()).collect();
    order.sort_by(|&a, &b| {
        let ra = instance
            .network()
            .cloudlet(a)
            .expect("valid id")
            .reliability();
        let rb = instance
            .network()
            .cloudlet(b)
            .expect("valid id")
            .reliability();
        rb.cmp(&ra).then(a.index().cmp(&b.index()))
    });
    order
}

/// Pre-optimization on-site greedy: closed-form `N_ij` per request.
#[derive(Debug)]
pub struct LegacyOnsiteGreedy<'a> {
    instance: &'a ProblemInstance,
    order: Vec<CloudletId>,
    ledger: CapacityLedger,
}

impl<'a> LegacyOnsiteGreedy<'a> {
    /// Creates the greedy scheduler.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        LegacyOnsiteGreedy {
            instance,
            order: reliability_order(instance),
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
        }
    }
}

impl OnlineScheduler for LegacyOnsiteGreedy<'_> {
    fn name(&self) -> &'static str {
        "greedy-onsite-legacy"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OnSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let Some(vnf) = self.instance.catalog().get(request.vnf()) else {
            return Decision::Reject;
        };
        for &cid in &self.order {
            let cloudlet = self.instance.network().cloudlet(cid).expect("valid id");
            let Some(n) = onsite_instances(
                vnf.reliability(),
                cloudlet.reliability(),
                request.reliability_requirement(),
            ) else {
                break;
            };
            let weight = f64::from(n) * vnf.compute() as f64;
            if self.ledger.fits(cid, request.slots(), weight) {
                self.ledger.charge(cid, request.slots(), weight);
                return Decision::Admit(Placement::OnSite {
                    cloudlet: cid,
                    instances: n,
                });
            }
        }
        Decision::Reject
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

/// Pre-optimization off-site greedy: per-request log-coefficient
/// recomputation.
#[derive(Debug)]
pub struct LegacyOffsiteGreedy<'a> {
    instance: &'a ProblemInstance,
    order: Vec<CloudletId>,
    ledger: CapacityLedger,
}

impl<'a> LegacyOffsiteGreedy<'a> {
    /// Creates the greedy scheduler.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        LegacyOffsiteGreedy {
            instance,
            order: reliability_order(instance),
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
        }
    }
}

impl OnlineScheduler for LegacyOffsiteGreedy<'_> {
    fn name(&self) -> &'static str {
        "greedy-offsite-legacy"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OffSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let Some(vnf) = self.instance.catalog().get(request.vnf()) else {
            return Decision::Reject;
        };
        let compute = vnf.compute() as f64;
        let ln_target = request.reliability_requirement().failure().ln();

        let mut selected = Vec::new();
        let mut ln_sum = 0.0;
        for &cid in &self.order {
            if !self.ledger.fits(cid, request.slots(), compute) {
                continue;
            }
            let cloudlet = self.instance.network().cloudlet(cid).expect("valid id");
            ln_sum += offsite_ln_coefficient(vnf.reliability(), cloudlet.reliability());
            selected.push(cid);
            if ln_sum <= ln_target + 1e-12 {
                break;
            }
        }
        if ln_sum > ln_target + 1e-12 {
            return Decision::Reject;
        }
        for &cid in &selected {
            self.ledger.charge(cid, request.slots(), compute);
        }
        Decision::Admit(Placement::OffSite {
            cloudlets: selected,
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

/// Pre-optimization revenue measurement: the full [`Simulation`] engine
/// (slot-stepped replay, per-slot stats, validation) rather than the
/// direct `run_online` + `validate_schedule` path.
pub fn legacy_revenue_of<S: OnlineScheduler>(scenario: &Scenario, scheduler: &mut S) -> f64 {
    let sim = Simulation::new(&scenario.instance, &scenario.requests).expect("valid scenario");
    let report = sim.run(scheduler).expect("run succeeds");
    assert!(
        report.validation.is_feasible(),
        "{} produced an infeasible schedule: {:?}",
        scheduler.name(),
        report.validation.violations
    );
    report.metrics.revenue
}

/// The pre-optimization Figure 1 harness, both panels, serial: for every
/// `(size, seed)` each of the four algorithm columns rebuilds the
/// scenario from scratch (as the old per-panel `fig1_sweep` +
/// `mean_revenue` composition did) and measures revenue through the
/// simulation engine. This is the end-to-end baseline `bench_report`
/// races the optimized harness against.
pub fn legacy_fig1_both(sizes: &[usize], seeds: &[u64]) -> (SweepTable, SweepTable) {
    let mut onsite = SweepTable::new(
        "requests",
        "revenue",
        vec!["Algorithm 1".into(), "Greedy".into()],
    );
    let mut offsite = SweepTable::new(
        "requests",
        "revenue",
        vec!["Algorithm 2".into(), "Greedy".into()],
    );
    let w = seeds.len().max(1) as f64;
    for &n in sizes {
        let params = ScenarioParams {
            requests: n,
            ..ScenarioParams::default()
        };
        let mut cols = [0.0f64; 4];
        // One scenario build per algorithm per seed, exactly like the
        // old `mean_revenue` calls.
        for (c, col) in cols.iter_mut().enumerate() {
            for &seed in seeds {
                let s = build_fresh(&ScenarioParams { seed, ..params });
                *col += match c {
                    0 => legacy_revenue_of(
                        &s,
                        &mut LegacyOnsitePrimalDual::new(&s.instance, CapacityPolicy::Enforce)
                            .expect("valid policy"),
                    ),
                    1 => legacy_revenue_of(&s, &mut LegacyOnsiteGreedy::new(&s.instance)),
                    2 => legacy_revenue_of(&s, &mut LegacyOffsitePrimalDual::new(&s.instance)),
                    _ => legacy_revenue_of(&s, &mut LegacyOffsiteGreedy::new(&s.instance)),
                };
            }
        }
        onsite.push_row(n as f64, vec![cols[0] / w, cols[1] / w]);
        offsite.push_row(n as f64, vec![cols[2] / w, cols[3] / w]);
    }
    (onsite, offsite)
}

/// The pre-optimization scenario build: topology + instance + workload
/// from scratch, no base caching.
fn build_fresh(params: &ScenarioParams) -> Scenario {
    crate::ScenarioBase::new(params.k_ratio, params.seed).scenario(params.requests, params.h_ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnfrel::run_online;

    #[test]
    fn legacy_schedulers_match_optimized_revenues() {
        let s = Scenario::build(&ScenarioParams {
            requests: 120,
            ..ScenarioParams::default()
        });
        assert_eq!(s.alg1_revenue(), {
            let mut l = LegacyOnsitePrimalDual::new(&s.instance, CapacityPolicy::Enforce).unwrap();
            legacy_revenue_of(&s, &mut l)
        });
        assert_eq!(s.greedy_onsite_revenue(), {
            let mut l = LegacyOnsiteGreedy::new(&s.instance);
            legacy_revenue_of(&s, &mut l)
        });
        assert_eq!(s.alg2_revenue(), {
            let mut l = LegacyOffsitePrimalDual::new(&s.instance);
            legacy_revenue_of(&s, &mut l)
        });
        assert_eq!(s.greedy_offsite_revenue(), {
            let mut l = LegacyOffsiteGreedy::new(&s.instance);
            legacy_revenue_of(&s, &mut l)
        });
    }

    #[test]
    fn legacy_dual_objectives_match_optimized() {
        // Decisions are bit-identical (tests/equivalence.rs); the dual
        // *objective* additionally flows `δ_i` through the prefix-sum
        // window query, whose float re-association may differ from the
        // per-slot loop by ulps — so compare to a tight relative bound.
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
        let s = Scenario::build(&ScenarioParams {
            requests: 100,
            ..ScenarioParams::default()
        });
        let mut new1 =
            vnfrel::onsite::OnsitePrimalDual::new(&s.instance, CapacityPolicy::Enforce).unwrap();
        let mut old1 = LegacyOnsitePrimalDual::new(&s.instance, CapacityPolicy::Enforce).unwrap();
        run_online(&mut new1, &s.requests).unwrap();
        run_online(&mut old1, &s.requests).unwrap();
        assert!(
            close(new1.dual_objective(), old1.dual_objective()),
            "{} vs {}",
            new1.dual_objective(),
            old1.dual_objective()
        );

        let mut new2 = vnfrel::offsite::OffsitePrimalDual::new(&s.instance);
        let mut old2 = LegacyOffsitePrimalDual::new(&s.instance);
        run_online(&mut new2, &s.requests).unwrap();
        run_online(&mut old2, &s.requests).unwrap();
        assert!(
            close(new2.dual_objective(), old2.dual_objective()),
            "{} vs {}",
            new2.dual_objective(),
            old2.dual_objective()
        );
    }

    #[test]
    fn legacy_harness_matches_optimized_harness() {
        let sizes = [25, 50];
        let seeds = [1, 2];
        let (on_old, off_old) = legacy_fig1_both(&sizes, &seeds);
        let (on_new, off_new) = crate::fig1_both_sweep(&sizes, &seeds, 1);
        for r in 0..sizes.len() {
            assert_eq!(on_old.rows[r], on_new.rows[r]);
            assert_eq!(off_old.rows[r], off_new.rows[r]);
        }
    }
}
