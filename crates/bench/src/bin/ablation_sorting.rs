//! **Ablation**: how much does Algorithm 2's price-per-log-reliability
//! ordering matter? Compares the paper's ordering against the off-site
//! greedy (reliability-descending order, payment-blind) and the random
//! baseline across request loads.
//!
//! Run with: `cargo run --release -p vnfrel-bench --bin ablation_sorting [--quick]`

use mec_sim::Simulation;
use vnfrel::baselines::RandomPlacement;
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::Scheme;
use vnfrel_bench::{note, quiet_from_args, Scenario, ScenarioParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let quiet = quiet_from_args();
    let sizes: Vec<usize> = if quick {
        vec![100, 200]
    } else {
        vec![100, 200, 400, 800]
    };
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
    note(
        quiet,
        "Ablation — off-site cloudlet-selection policies (revenue)\n",
    );
    println!(
        "{:>9} {:>18} {:>18} {:>18}",
        "requests", "price-ratio (Alg2)", "reliability-desc", "random"
    );
    for &n in &sizes {
        let mut alg2 = 0.0;
        let mut greedy = 0.0;
        let mut random = 0.0;
        for &seed in seeds {
            let s = Scenario::build(&ScenarioParams {
                requests: n,
                seed,
                ..ScenarioParams::default()
            });
            let sim = Simulation::new(&s.instance, &s.requests).expect("valid");
            let mut a = OffsitePrimalDual::new(&s.instance);
            alg2 += sim.run(&mut a).expect("run").metrics.revenue;
            let mut g = OffsiteGreedy::new(&s.instance);
            greedy += sim.run(&mut g).expect("run").metrics.revenue;
            let mut r = RandomPlacement::new(&s.instance, Scheme::OffSite, seed);
            random += sim.run(&mut r).expect("run").metrics.revenue;
        }
        let k = seeds.len() as f64;
        println!(
            "{n:>9} {:>18.1} {:>18.1} {:>18.1}",
            alg2 / k,
            greedy / k,
            random / k
        );
    }
    note(
        quiet,
        "\nthe price-ratio ordering is what lets Algorithm 2 keep cheap \
         log-reliability\nfor later high-payers; reliability-descending \
         ordering burns the best cloudlets first.",
    );
}
