//! **Table A (ablation)**: capacity-violation behaviour of Algorithm 1.
//!
//! Run with: `cargo run --release -p vnfrel-bench --bin ablation_scaling [--quick]`
//!
//! Compares the *raw* Algorithm 1 (violations allowed, bounded by ξ per
//! Lemma 8) against the evaluation policies (capacity-enforced, scaled
//! σ ∈ {1.5, 2}) across request loads. Reports observed worst-case
//! overflow vs the theoretical bound and the revenue cost of enforcing
//! capacity.

use mec_sim::Simulation;
use vnfrel::bounds::OnsiteBounds;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::OnlineScheduler;
use vnfrel_bench::{note, quiet_from_args, Scenario, ScenarioParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let quiet = quiet_from_args();
    let sizes: Vec<usize> = if quick {
        vec![100, 200]
    } else {
        vec![100, 200, 400, 800]
    };
    note(quiet, "Table A — Algorithm 1 capacity policies (on-site)\n");
    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "requests",
        "raw revenue",
        "enforce rev",
        "scaled1.5 rev",
        "scaled2.0 rev",
        "overflow",
        "ξ/cap_min-1"
    );
    for &n in &sizes {
        let scenario = Scenario::build(&ScenarioParams {
            requests: n,
            ..ScenarioParams::default()
        });
        let sim = Simulation::new(&scenario.instance, &scenario.requests).expect("valid");

        let mut raw =
            OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::AllowViolations).unwrap();
        // The raw policy may overflow: run without the harness feasibility
        // assertion.
        let mut schedule = vnfrel::Schedule::new();
        for r in &scenario.requests {
            let d = raw.decide(r);
            schedule.record(r, d);
        }
        let raw_revenue = schedule.revenue();
        let overflow = raw.ledger().max_overflow();

        let enforce = scenario.alg1_revenue();
        let mut s15 =
            OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Scaled(1.5)).unwrap();
        let r15 = sim.run(&mut s15).expect("run").metrics.revenue;
        let mut s20 =
            OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Scaled(2.0)).unwrap();
        let r20 = sim.run(&mut s20).expect("run").metrics.revenue;

        let bound = OnsiteBounds::compute(&scenario.instance, &scenario.requests)
            .map(|b| (b.xi() / b.cap_min - 1.0).max(0.0))
            .unwrap_or(f64::NAN);
        println!(
            "{n:>9} {raw_revenue:>14.1} {enforce:>14.1} {r15:>14.1} {r20:>14.1} {overflow:>12.3} {bound:>12.3}"
        );
        assert!(
            overflow <= bound + 1e-9,
            "observed overflow {overflow} exceeds Lemma 8 bound {bound}"
        );
    }
    note(
        quiet,
        "\nobserved overflow always within the Lemma 8 bound; enforcing capacity\n\
         costs little revenue relative to the raw algorithm at every load.",
    );
}
