//! Regenerates **Figure 2(a)**: revenue vs the payment-rate variation
//! `H = pr_max / pr_min` (`pr_max` fixed, `pr_min` lowered).
//!
//! Run with:
//! `cargo run --release -p vnfrel-bench --bin fig2a [--quick] [--threads N]`
//!
//! Paper shape to reproduce: revenue decreases as H grows (users pay less
//! per unit), the effect is strong for H ∈ [1, 5] and then saturates
//! because low-rate requests get rejected anyway.

use vnfrel_bench::{fig2a_sweep, note, quiet_from_args, threads_from_args};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_from_args();
    let quiet = quiet_from_args();
    let (h_values, requests, seeds): (Vec<f64>, usize, Vec<u64>) = if quick {
        (vec![1.0, 3.0, 6.0, 10.0], 150, vec![1])
    } else {
        ((1..=10).map(|i| i as f64).collect(), 600, vec![1, 2, 3])
    };
    let table = fig2a_sweep(&h_values, requests, &seeds, threads);
    note(
        quiet,
        format!("Figure 2(a) — revenue vs payment-rate variation H ({requests} requests)\n"),
    );
    println!("{table}");
    // Effect strength: drop from H=1 to H=5 vs drop from H=5 to H=max.
    if table.rows.len() >= 3 {
        let first = table.rows.first().unwrap().1[0];
        let mid = table.rows[table.rows.len() / 2].1[0];
        let last = table.rows.last().unwrap().1[0];
        println!(
            "Algorithm 1 revenue: H=1 → {first:.1}, mid → {mid:.1}, H=max → {last:.1} \
             (early drop {:.1}%, late drop {:.1}%)",
            (1.0 - mid / first) * 100.0,
            (1.0 - last / mid) * 100.0
        );
    }
    println!("\nmarkdown:\n{}", table.to_markdown());
}
