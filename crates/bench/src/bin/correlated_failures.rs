//! **Table D (robustness)**: revenue retention under *correlated* domain
//! outages with cascades — no recovery vs plain recovery vs graceful
//! degradation, both schemes, against an independent-failure control.
//!
//! Run with: `cargo run --release -p vnfrel-bench --bin correlated_failures [--quick]`
//!
//! For each seed, TWO outage traces are generated from the identical
//! per-cloudlet failure config and RNG seed: an *independent* control
//! (no domains) and a *correlated* stream where three zone-partition
//! failure domains crash atomically and overloaded survivors face a
//! cascade hazard. Every (scheme, mode) cell replays the same trace.
//!
//! Hard assertions, enforced here and pinned in `tests/degradation.rs`:
//! on the correlated traces graceful degradation yields strictly fewer
//! SLA-violated request-slots and strictly more retained revenue than
//! `RecoveryPolicy::None` for BOTH schemes, and the runtime invariant
//! auditor reports zero violations on every degraded run.
//!
//! Output is printed and written to `results/correlated_failures.txt`.

use std::fmt::Write as _;

use mec_sim::{
    CascadeConfig, DegradationConfig, FailureConfig, FailureProcess, RecoveryPolicy, Simulation,
};
use mec_topology::FailureDomainSet;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, Scheme};
use vnfrel_bench::{note, quiet_from_args, Scenario, ScenarioParams};

const MODES: [&str; 3] = ["none", "recovery", "degraded"];
const TRACES: [&str; 2] = ["independent", "correlated"];

/// Aggregated SLA outcome of one (scheme, trace, mode) cell across seeds.
#[derive(Debug, Default, Clone, Copy)]
struct Agg {
    admitted: usize,
    violated: usize,
    failures: usize,
    recoveries: usize,
    evicted: usize,
    retained: f64,
    refunded: f64,
    audit_violations: usize,
}

fn make_scheduler<'a>(scheme: Scheme, scenario: &'a Scenario) -> Box<dyn OnlineScheduler + 'a> {
    match scheme {
        Scheme::OnSite => {
            Box::new(OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap())
        }
        Scheme::OffSite => Box::new(OffsitePrimalDual::new(&scenario.instance)),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let quiet = quiet_from_args();
    let (requests, seeds): (usize, Vec<u64>) = if quick {
        (150, vec![1])
    } else {
        (300, vec![1, 2, 3])
    };
    // Independent failures are kept mild (mttf 12) so the correlated
    // stream's extra damage comes from the domains (mttf 6 per zone)
    // and the cascade overlay, not from the shared base process.
    let config = FailureConfig {
        cloudlet_mttf: 12.0,
        cloudlet_mttr: 2.0,
        instance_kill_rate: 0.05,
    };
    let (domain_mttf, domain_mttr, zones) = (6.0, 2.0, 3);
    let cascade = CascadeConfig {
        utilization_threshold: 0.5,
        hazard: 0.5,
        outage_slots: 2,
    };
    let degradation = DegradationConfig::default();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table D — revenue retention under correlated domain outages \
         ({requests} requests, seeds {seeds:?})\n\
         base failures: mttf {} mttr {} kill-rate {}; domains: {zones} zones \
         mttf {domain_mttf} mttr {domain_mttr}; cascade: threshold {} hazard {} \
         outage {} slots; degradation: headroom {} max-retries {} backoff {}\n",
        config.cloudlet_mttf,
        config.cloudlet_mttr,
        config.instance_kill_rate,
        cascade.utilization_threshold,
        cascade.hazard,
        cascade.outage_slots,
        degradation.headroom,
        degradation.max_retries,
        degradation.backoff_base,
    );
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8} {:>11} {:>11}",
        "scheme",
        "trace",
        "mode",
        "admitted",
        "violated",
        "failures",
        "recovered",
        "evicted",
        "retained",
        "refunded"
    );

    for scheme in [Scheme::OnSite, Scheme::OffSite] {
        // cells[trace][mode]
        let mut cells = [[Agg::default(); 3]; 2];
        for &seed in &seeds {
            let scenario = Scenario::build(&ScenarioParams {
                requests,
                seed,
                ..ScenarioParams::default()
            });
            let sim = Simulation::new(&scenario.instance, &scenario.requests).expect("valid");
            let domains = FailureDomainSet::zones(
                scenario.instance.network(),
                zones,
                domain_mttf,
                domain_mttr,
            )
            .expect("valid domains");
            // Identical seed for both streams: the correlated trace
            // differs only by the domain process and cascade overlay.
            let fseed = seed.wrapping_add(9000);
            let independent = FailureProcess::generate(
                scenario.instance.network(),
                &config,
                scenario.instance.horizon(),
                &mut ChaCha8Rng::seed_from_u64(fseed),
            )
            .expect("valid config");
            let correlated = FailureProcess::generate_with_domains(
                scenario.instance.network(),
                &config,
                &domains,
                Some(cascade),
                scenario.instance.horizon(),
                &mut ChaCha8Rng::seed_from_u64(fseed),
            )
            .expect("valid config");
            for (row, trace) in [&independent, &correlated].into_iter().enumerate() {
                for (col, &mode) in MODES.iter().enumerate() {
                    let mut scheduler = make_scheduler(scheme, &scenario);
                    let report = match mode {
                        "none" => sim
                            .run_with_failures(scheduler.as_mut(), trace, RecoveryPolicy::None)
                            .expect("fault run"),
                        "recovery" => sim
                            .run_with_failures(
                                scheduler.as_mut(),
                                trace,
                                RecoveryPolicy::SchemeMatching,
                            )
                            .expect("fault run"),
                        _ => sim
                            .run_degraded(
                                scheduler.as_mut(),
                                trace,
                                RecoveryPolicy::SchemeMatching,
                                &degradation,
                            )
                            .expect("degraded run"),
                    };
                    let cell = &mut cells[row][col];
                    cell.admitted += report.metrics.admitted;
                    cell.violated += report.sla.violated_request_slots();
                    cell.failures += report.sla.total_failures();
                    cell.recoveries += report.sla.total_recoveries();
                    cell.evicted += report.sla.evicted_requests();
                    cell.retained += report.sla.revenue_retained();
                    cell.refunded += report.sla.revenue_refunded();
                    if let Some(audit) = &report.audit {
                        cell.audit_violations += audit.violations.len();
                    }
                }
            }
        }
        for (row, trace) in TRACES.iter().enumerate() {
            for (col, mode) in MODES.iter().enumerate() {
                let cell = cells[row][col];
                let _ = writeln!(
                    out,
                    "{:>9} {:>12} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8} {:>11.2} {:>11.2}",
                    match scheme {
                        Scheme::OnSite => "on-site",
                        Scheme::OffSite => "off-site",
                    },
                    trace,
                    mode,
                    cell.admitted,
                    cell.violated,
                    cell.failures,
                    cell.recoveries,
                    cell.evicted,
                    cell.retained,
                    cell.refunded
                );
            }
        }
        // Correlated-trace acceptance: graceful degradation strictly
        // beats no recovery on both axes, with a clean audit.
        let none = cells[1][0];
        let degraded = cells[1][2];
        assert!(
            none.failures > 0,
            "correlated trace produced no failures; the comparison is vacuous"
        );
        assert!(
            degraded.violated < none.violated,
            "{scheme:?}: graceful degradation must strictly reduce violated \
             request-slots on correlated traces ({} vs {} with none)",
            degraded.violated,
            none.violated
        );
        assert!(
            degraded.retained > none.retained,
            "{scheme:?}: graceful degradation must strictly increase retained \
             revenue on correlated traces ({:.2} vs {:.2} with none)",
            degraded.retained,
            none.retained
        );
        assert_eq!(
            degraded.audit_violations, 0,
            "{scheme:?}: the invariant auditor found violations in a degraded run"
        );
        assert_eq!(
            cells[0][2].audit_violations, 0,
            "{scheme:?}: the invariant auditor found violations on the independent trace"
        );
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "graceful degradation strictly reduces SLA-violated request-slots and \
         strictly increases retained revenue vs none on the correlated traces, \
         for both schemes; the runtime invariant auditor reported zero \
         violations across every degraded run."
    );

    print!("{out}");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/correlated_failures.txt"
    );
    std::fs::write(path, &out).expect("write results/correlated_failures.txt");
    note(quiet, format!("wrote {path}"));
}
