//! **Serving throughput**: spins up the `mec-serve` admission daemon
//! in-process on an ephemeral port, drives it with the closed-loop load
//! generator at full speed, and reports decisions/sec plus p50/p99/max
//! admission latency for both schemes.
//!
//! Hard-asserts daemon ↔ batch parity along the way: the client-side
//! revenue must be bit-identical to a batch [`Simulation`] run of the
//! same trace, so the numbers below measure the *serving* overhead of
//! the very same decisions — socket, framing, queue — not a different
//! schedule.
//!
//! Run with: `cargo run --release -p vnfrel-bench --bin serve_bench [--quick]`
//!
//! Output is printed and written to `results/serve_throughput.txt`.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;

use mec_obs::MetricsRegistry;
use mec_serve::{
    run_loadgen, serve, DecisionTap, LoadgenConfig, ServeConfig, ServeError, ServeMetricIds,
    ServeReport,
};
use mec_sim::Simulation;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, ProblemInstance};
use vnfrel_bench::{note, quiet_from_args, Scenario, ScenarioParams};

/// Starts a daemon thread on `127.0.0.1:0`, returning the bound address
/// and the handle yielding the final report.
fn spawn_daemon(
    instance: ProblemInstance,
    onsite: bool,
) -> (
    SocketAddr,
    thread::JoinHandle<Result<ServeReport, ServeError>>,
) {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let tap = DecisionTap::new();
        let mut alg1;
        let mut alg2;
        let scheduler: &mut dyn OnlineScheduler = if onsite {
            alg1 = OnsitePrimalDual::with_sink(&instance, CapacityPolicy::Enforce, tap.clone())
                .expect("valid instance");
            &mut alg1
        } else {
            alg2 = OffsitePrimalDual::with_sink(&instance, tap.clone());
            &mut alg2
        };
        let mut registry = MetricsRegistry::new();
        let ids = ServeMetricIds::register(&mut registry, scheduler.ledger().cloudlet_count());
        let config = ServeConfig::new("127.0.0.1:0");
        serve(scheduler, &tap, &registry, &ids, &config, Some(tx))
    });
    let addr = rx.recv().expect("daemon bound");
    (addr, handle)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let quiet = quiet_from_args();
    let requests = if quick { 2_000 } else { 10_000 };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Serving throughput — in-process daemon, closed-loop loadgen at full speed"
    );
    let _ = writeln!(
        out,
        "({requests} requests, abilene topology, seed 1; latency = send -> decision parsed; \
         revenue bit-identical to the batch engine)"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>9} {:>18} {:>13} {:>9} {:>9} {:>9} {:>9}",
        "scheme", "algorithm", "decisions/s", "p50_us", "p90_us", "p99_us", "max_us"
    );

    for onsite in [true, false] {
        let s = Scenario::build(&ScenarioParams {
            requests,
            ..ScenarioParams::default()
        });
        let sim = Simulation::new(&s.instance, &s.requests).expect("valid scenario");
        let batch = if onsite {
            let mut alg =
                OnsitePrimalDual::new(&s.instance, CapacityPolicy::Enforce).expect("valid");
            sim.run(&mut alg).expect("batch run")
        } else {
            let mut alg = OffsitePrimalDual::new(&s.instance);
            sim.run(&mut alg).expect("batch run")
        };

        let (addr, daemon) = spawn_daemon(s.instance.clone(), onsite);
        let mut lg = LoadgenConfig::new(addr.to_string());
        lg.shutdown_when_done = true;
        let client = run_loadgen(&s.requests, &lg).expect("loadgen run");
        let report = daemon
            .join()
            .expect("daemon thread")
            .expect("clean shutdown");

        // Parity hard-asserts: same decisions, same money, to the bit.
        assert_eq!(client.decided, requests, "every request must be decided");
        assert_eq!(
            client.admitted, batch.metrics.admitted,
            "daemon/batch admission count diverged"
        );
        assert_eq!(
            client.revenue.to_bits(),
            batch.metrics.revenue.to_bits(),
            "daemon/batch revenue diverged"
        );
        assert_eq!(report.stats.decided as usize, requests);

        let (scheme, algorithm) = if onsite {
            ("on-site", "alg1-primal-dual")
        } else {
            ("off-site", "alg2-primal-dual")
        };
        let _ = writeln!(
            out,
            "{:>9} {:>18} {:>13.0} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            scheme,
            algorithm,
            client.throughput(),
            client.latency.p50 * 1e6,
            client.latency.p90 * 1e6,
            client.latency.p99 * 1e6,
            client.latency.max * 1e6
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "closed loop: one outstanding request per connection, so decisions/s is\n\
         bounded by round-trip latency, not scheduler throughput; see DESIGN.md §12\n\
         and the EXPERIMENTS.md serving-throughput methodology for caveats."
    );

    print!("{out}");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/serve_throughput.txt"
    );
    std::fs::write(path, &out).expect("write results/serve_throughput.txt");
    note(quiet, format_args!("\nwritten to {path}"));
}
