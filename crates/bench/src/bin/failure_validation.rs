//! **Table B (ablation)**: Monte-Carlo validation of delivered
//! availability vs the requested reliability `R_i`, for both schemes.
//!
//! Run with: `cargo run --release -p vnfrel-bench --bin failure_validation [--quick]`
//!
//! The paper's guarantees are analytical; this binary samples component
//! failures and reports, per scheme, the worst empirical margin
//! (measured − required) and the number of statistically significant
//! violations (there should be none).

use mec_sim::{failure, Simulation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel_bench::{note, quiet_from_args, Scenario, ScenarioParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let quiet = quiet_from_args();
    let (trials, requests) = if quick { (5_000, 100) } else { (100_000, 400) };
    let scenario = Scenario::build(&ScenarioParams {
        requests,
        ..ScenarioParams::default()
    });
    let sim = Simulation::new(&scenario.instance, &scenario.requests).expect("valid");
    let mut rng = ChaCha8Rng::seed_from_u64(12345);

    note(
        quiet,
        format!(
            "Table B — Monte-Carlo delivered availability ({trials} trials, {requests} requests)\n"
        ),
    );
    println!(
        "{:>10} {:>10} {:>14} {:>16} {:>12}",
        "scheme", "admitted", "worst margin", "mean margin", "violations"
    );
    for scheme in ["on-site", "off-site"] {
        let schedule = match scheme {
            "on-site" => {
                let mut alg =
                    OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
                sim.run(&mut alg).expect("run").schedule
            }
            _ => {
                let mut alg = OffsitePrimalDual::new(&scenario.instance);
                sim.run(&mut alg).expect("run").schedule
            }
        };
        let report = failure::inject_failures(
            &scenario.instance,
            &scenario.requests,
            &schedule,
            trials,
            &mut rng,
        )
        .expect("injection");
        let worst = report.worst_margin().unwrap_or(f64::NAN);
        let mean = report.requests.iter().map(|r| r.margin()).sum::<f64>()
            / report.requests.len().max(1) as f64;
        let violations = report.statistical_violations(3.0);
        println!(
            "{:>10} {:>10} {:>14.4} {:>16.4} {:>12}",
            scheme,
            report.requests.len(),
            worst,
            mean,
            violations.len()
        );
        assert!(
            violations.is_empty(),
            "{scheme}: statistically significant reliability violations: {violations:?}"
        );
    }
    note(
        quiet,
        "\nno admitted request receives less availability than it was promised.",
    );
}
