//! Regenerates **Figure 1(a)**: revenue vs number of requests under the
//! on-site scheme — Algorithm 1 vs greedy vs offline optimum.
//!
//! Run with:
//! `cargo run --release -p vnfrel-bench --bin fig1a [--quick] [--threads N]`
//!
//! Paper shape to reproduce: both algorithms near-optimal when resources
//! are abundant; Algorithm 1 pulls ahead of greedy as requests grow
//! (+31.8% at 800 in the paper), and the optimum dominates both.

use vnfrel::Scheme;
use vnfrel_bench::{fig1_sweep, note, quiet_from_args, threads_from_args};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_from_args();
    let quiet = quiet_from_args();
    let (sizes, seeds, exact_below): (Vec<usize>, Vec<u64>, usize) = if quick {
        ((1..=4).map(|i| i * 50).collect(), vec![1], 80)
    } else {
        ((1..=8).map(|i| i * 100).collect(), vec![1, 2, 3], 150)
    };
    let table = fig1_sweep(Scheme::OnSite, &sizes, &seeds, true, exact_below, threads);
    note(
        quiet,
        "Figure 1(a) — on-site scheme: revenue vs number of requests\n",
    );
    println!("{table}");
    if let Some(ratio) = table.final_ratio("Algorithm 1", "Greedy") {
        println!(
            "Algorithm 1 vs greedy at {} requests: {:+.1}% (paper: +31.8% at 800)",
            sizes.last().unwrap(),
            (ratio - 1.0) * 100.0
        );
    }
    println!("\nmarkdown:\n{}", table.to_markdown());
}
