//! **Ablation**: do Algorithm 1's *online* dual prices `λ_{tj}` track the
//! *offline* LP shadow prices of the capacity constraints?
//!
//! Run with: `cargo run --release -p vnfrel-bench --bin ablation_duals [--quick]`
//!
//! The primal-dual analysis treats `λ_{tj}` as an online estimate of how
//! scarce each (slot, cloudlet) is. Solving the offline LP relaxation
//! afterwards gives the "true" scarcity prices. This binary reports, per
//! load level, the correlation between the two price fields and how often
//! they agree on *which* pairs are scarce at all — evidence for (or
//! against) the price interpretation that motivates the algorithm.

use vnfrel::onsite::offline::capacity_shadow_prices;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::run_online;
use vnfrel_bench::{note, quiet_from_args, Scenario, ScenarioParams};

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let quiet = quiet_from_args();
    let sizes: Vec<usize> = if quick {
        vec![100, 200]
    } else {
        vec![100, 200, 400, 600]
    };
    note(
        quiet,
        "Ablation — online λ vs offline LP capacity shadow prices (on-site)\n",
    );
    println!(
        "{:>9} {:>12} {:>18} {:>18}",
        "requests", "correlation", "scarce agree (%)", "priced pairs"
    );
    for &n in &sizes {
        let scenario = Scenario::build(&ScenarioParams {
            requests: n,
            ..ScenarioParams::default()
        });
        let mut alg = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce)
            .expect("valid policy");
        run_online(&mut alg, &scenario.requests).expect("run");
        let offline =
            capacity_shadow_prices(&scenario.instance, &scenario.requests).expect("lp solve");

        let mut online_flat = Vec::new();
        let mut offline_flat = Vec::new();
        for cloudlet in scenario.instance.network().cloudlets() {
            let j = cloudlet.id();
            for t in scenario.instance.horizon().slots() {
                online_flat.push(alg.lambda(j, t));
                offline_flat.push(offline[j.index()][t]);
            }
        }
        let corr = pearson(&online_flat, &offline_flat);
        // "Scarce" = price above 1% of that field's maximum.
        let thresh = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max) * 0.01;
        let (to, tf) = (thresh(&online_flat), thresh(&offline_flat));
        let agree = online_flat
            .iter()
            .zip(&offline_flat)
            .filter(|&(&o, &f)| (o > to) == (f > tf))
            .count();
        let priced = offline_flat.iter().filter(|&&f| f > tf).count();
        println!(
            "{n:>9} {corr:>12.3} {:>18.1} {priced:>18}",
            100.0 * agree as f64 / online_flat.len() as f64
        );
    }
    note(
        quiet,
        "\nthe online prices are a coarse estimate of the offline shadow prices \
         \n(modest positive correlation), but they agree well on *which* \
         \n(slot, cloudlet) pairs are scarce once contention is real — which is \
         \nall the admission rule needs.",
    );
}
