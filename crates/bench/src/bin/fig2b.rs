//! Regenerates **Figure 2(b)**: revenue vs the cloudlet-reliability
//! variation `K = rc_max / rc_min` (`rc_max` fixed, `rc_min` lowered).
//!
//! Run with:
//! `cargo run --release -p vnfrel-bench --bin fig2b [--quick] [--threads N]`
//!
//! Paper shape to reproduce: revenue decreases as K grows (cloudlets get
//! less reliable, more backups are needed), and the greedy baseline
//! degrades much faster than Algorithm 2 because it exhausts the reliable
//! cloudlets first.

use vnfrel_bench::{fig2b_sweep, note, quiet_from_args, threads_from_args};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_from_args();
    let quiet = quiet_from_args();
    let (k_values, requests, seeds): (Vec<f64>, usize, Vec<u64>) = if quick {
        (vec![1.0, 1.05, 1.1], 150, vec![1])
    } else {
        (
            vec![1.0, 1.02, 1.04, 1.06, 1.08, 1.1, 1.15, 1.2],
            600,
            vec![1, 2, 3],
        )
    };
    let table = fig2b_sweep(&k_values, requests, &seeds, threads);
    note(
        quiet,
        format!(
            "Figure 2(b) — revenue vs cloudlet-reliability variation K ({requests} requests)\n"
        ),
    );
    println!("{table}");
    if let Some(r_first) = table.rows.first() {
        let r_last = table.rows.last().unwrap();
        let alg2_drop = 1.0 - r_last.1[0] / r_first.1[0];
        let greedy_drop = 1.0 - r_last.1[1] / r_first.1[1];
        println!(
            "revenue drop from K={} to K={}: Algorithm 2 {:.1}%, greedy {:.1}%",
            r_first.0,
            r_last.0,
            alg2_drop * 100.0,
            greedy_drop * 100.0
        );
    }
    println!("\nmarkdown:\n{}", table.to_markdown());
}
