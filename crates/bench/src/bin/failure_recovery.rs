//! **Table C (robustness)**: SLA outcomes under dynamic cloudlet outages
//! and instance deaths — no-recovery vs online recovery, both schemes.
//!
//! Run with: `cargo run --release -p vnfrel-bench --bin failure_recovery [--quick]`
//!
//! For each seed, ONE outage trace is generated from the topology alone
//! and replayed against every (scheme, policy) combination, so every row
//! of a scheme block faces the identical failures. Recovery must
//! strictly reduce SLA-violated request-slots versus `none` — that
//! assertion is enforced here and in `tests/fault_recovery.rs`.
//!
//! Output is printed and written to `results/failure_recovery.txt`.

use std::fmt::Write as _;

use mec_sim::{FailureConfig, FailureProcess, RecoveryPolicy, Simulation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, Scheme};
use vnfrel_bench::{note, quiet_from_args, Scenario, ScenarioParams};

/// Aggregated SLA outcome of one (scheme, policy) cell across seeds.
#[derive(Debug, Default, Clone, Copy)]
struct Agg {
    admitted: usize,
    violated: usize,
    failures: usize,
    recoveries: usize,
    latency: usize,
    unrecovered: usize,
    retained: f64,
    refunded: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let quiet = quiet_from_args();
    let (requests, seeds): (usize, Vec<u64>) = if quick {
        (150, vec![1])
    } else {
        (300, vec![1, 2, 3])
    };
    // The bench horizon is 16 slots; an MTTF of 6 makes each cloudlet
    // crash ~2–3 times per run so recovery has real work to do.
    let config = FailureConfig {
        cloudlet_mttf: 6.0,
        cloudlet_mttr: 2.0,
        instance_kill_rate: 0.05,
    };
    let policies = [
        RecoveryPolicy::None,
        RecoveryPolicy::OnSite,
        RecoveryPolicy::OffSite,
        RecoveryPolicy::SchemeMatching,
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table C — SLA under dynamic outages ({requests} requests, seeds {seeds:?}, \
         mttf {} mttr {} kill-rate {})\n",
        config.cloudlet_mttf, config.cloudlet_mttr, config.instance_kill_rate
    );
    let _ = writeln!(
        out,
        "{:>9} {:>18} {:>9} {:>9} {:>9} {:>10} {:>8} {:>8} {:>11} {:>11}",
        "scheme",
        "policy",
        "admitted",
        "violated",
        "failures",
        "recovered",
        "rate%",
        "latency",
        "retained",
        "refunded"
    );

    for scheme in [Scheme::OnSite, Scheme::OffSite] {
        let mut cells = [Agg::default(); 4];
        for &seed in &seeds {
            let scenario = Scenario::build(&ScenarioParams {
                requests,
                seed,
                ..ScenarioParams::default()
            });
            let sim = Simulation::new(&scenario.instance, &scenario.requests).expect("valid");
            // One trace per seed, shared by every policy and both schemes.
            let trace = FailureProcess::generate(
                scenario.instance.network(),
                &config,
                scenario.instance.horizon(),
                &mut ChaCha8Rng::seed_from_u64(seed.wrapping_add(7000)),
            )
            .expect("valid config");
            for (cell, &policy) in cells.iter_mut().zip(&policies) {
                let mut scheduler: Box<dyn OnlineScheduler> = match scheme {
                    Scheme::OnSite => Box::new(
                        OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap(),
                    ),
                    Scheme::OffSite => Box::new(OffsitePrimalDual::new(&scenario.instance)),
                };
                let report = sim
                    .run_with_failures(scheduler.as_mut(), &trace, policy)
                    .expect("fault run");
                cell.admitted += report.metrics.admitted;
                cell.violated += report.sla.violated_request_slots();
                cell.failures += report.sla.total_failures();
                cell.recoveries += report.sla.total_recoveries();
                cell.latency += report
                    .sla
                    .records
                    .iter()
                    .map(|r| r.repair_latency_slots)
                    .sum::<usize>();
                cell.unrecovered += report.sla.unrecovered_requests();
                cell.retained += report.sla.revenue_retained();
                cell.refunded += report.sla.revenue_refunded();
            }
        }
        for (cell, policy) in cells.iter().zip(&policies) {
            let rate = if cell.failures == 0 {
                100.0
            } else {
                100.0 * cell.recoveries as f64 / cell.failures as f64
            };
            let latency = if cell.recoveries == 0 {
                f64::NAN
            } else {
                cell.latency as f64 / cell.recoveries as f64
            };
            let _ = writeln!(
                out,
                "{:>9} {:>18} {:>9} {:>9} {:>9} {:>10} {:>8.1} {:>8.2} {:>11.2} {:>11.2}",
                match scheme {
                    Scheme::OnSite => "on-site",
                    Scheme::OffSite => "off-site",
                },
                policy.to_string(),
                cell.admitted,
                cell.violated,
                cell.failures,
                cell.recoveries,
                rate,
                latency,
                cell.retained,
                cell.refunded
            );
        }
        let none = cells[0];
        assert!(
            none.failures > 0,
            "outage rate produced no failures; the comparison is vacuous"
        );
        for (cell, policy) in cells.iter().zip(&policies).skip(1) {
            assert!(
                cell.violated < none.violated,
                "{scheme:?}/{policy}: recovery must strictly reduce violated request-slots \
                 ({} vs {} with none)",
                cell.violated,
                none.violated
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "every recovery policy strictly reduces SLA-violated request-slots vs none, \
         on the same outage trace, for both schemes."
    );

    print!("{out}");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/failure_recovery.txt"
    );
    std::fs::write(path, &out).expect("write results/failure_recovery.txt");
    note(quiet, format!("wrote {path}"));
}
