//! **Ablation**: intra-slot batching. The paper's model is strictly
//! one-by-one; a real hypervisor sees each slot's batch and can sort it.
//! How much revenue does that mild lookahead buy each algorithm?
//!
//! Run with: `cargo run --release -p vnfrel-bench --bin ablation_ordering [--quick]`

use mec_sim::{IntraSlotOrder, Simulation};
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel_bench::{note, quiet_from_args, Scenario, ScenarioParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let quiet = quiet_from_args();
    let sizes: Vec<usize> = if quick {
        vec![200]
    } else {
        vec![200, 400, 800]
    };
    let orders = [
        ("arrival", IntraSlotOrder::Arrival),
        ("payment", IntraSlotOrder::PaymentDescending),
        ("density", IntraSlotOrder::DensityDescending),
    ];
    note(
        quiet,
        "Ablation — intra-slot batch ordering (on-site revenue)\n",
    );
    println!(
        "{:>9} {:>10} {:>14} {:>14}",
        "requests", "ordering", "Algorithm 1", "Greedy"
    );
    for &n in &sizes {
        for (name, order) in orders {
            let mut alg1 = 0.0;
            let mut greedy = 0.0;
            let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
            for &seed in seeds {
                let s = Scenario::build(&ScenarioParams {
                    requests: n,
                    seed,
                    ..ScenarioParams::default()
                });
                let sim = Simulation::new(&s.instance, &s.requests).expect("valid");
                let mut a = OnsitePrimalDual::new(&s.instance, CapacityPolicy::Enforce)
                    .expect("valid policy");
                alg1 += sim.run_ordered(&mut a, order).expect("run").metrics.revenue;
                let mut g = OnsiteGreedy::new(&s.instance);
                greedy += sim.run_ordered(&mut g, order).expect("run").metrics.revenue;
            }
            let k = seeds.len() as f64;
            println!("{n:>9} {name:>10} {:>14.1} {:>14.1}", alg1 / k, greedy / k);
        }
        println!();
    }
    note(
        quiet,
        "payment-aware batching mostly helps the payment-blind greedy; \
         \nAlgorithm 1 already filters by payment through its prices.",
    );
}
