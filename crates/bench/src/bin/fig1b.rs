//! Regenerates **Figure 1(b)**: revenue vs number of requests under the
//! off-site scheme — Algorithm 2 vs greedy vs offline optimum.
//!
//! Run with:
//! `cargo run --release -p vnfrel-bench --bin fig1b [--quick] [--threads N]`
//!
//! Paper shape to reproduce: Algorithm 2 outperforms greedy (+15.4% at
//! 800 requests in the paper), with the optimum dominating both.

use vnfrel::Scheme;
use vnfrel_bench::{fig1_sweep, note, quiet_from_args, threads_from_args};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_from_args();
    let quiet = quiet_from_args();
    let (sizes, seeds, exact_below): (Vec<usize>, Vec<u64>, usize) = if quick {
        ((1..=4).map(|i| i * 50).collect(), vec![1], 60)
    } else {
        ((1..=8).map(|i| i * 100).collect(), vec![1, 2, 3], 120)
    };
    let table = fig1_sweep(Scheme::OffSite, &sizes, &seeds, true, exact_below, threads);
    note(
        quiet,
        "Figure 1(b) — off-site scheme: revenue vs number of requests\n",
    );
    println!("{table}");
    if let Some(ratio) = table.final_ratio("Algorithm 2", "Greedy") {
        println!(
            "Algorithm 2 vs greedy at {} requests: {:+.1}% (paper: +15.4% at 800)",
            sizes.last().unwrap(),
            (ratio - 1.0) * 100.0
        );
    }
    println!("\nmarkdown:\n{}", table.to_markdown());
}
