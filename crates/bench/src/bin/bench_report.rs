//! Machine-readable performance baseline: races the optimized hot path
//! and harness against the faithful pre-optimization copies in
//! `vnfrel_bench::legacy` and emits `results/BENCH_schedule.json`.
//!
//! Run with:
//! `cargo run --release -p vnfrel-bench --bin bench_report [--quick]
//!  [--threads N] [--out PATH] [--check PATH]`
//!
//! Measurements:
//!
//! * **decide() throughput** (requests/sec) for the four online
//!   algorithms, optimized vs legacy, on one scarce scenario;
//! * **end-to-end Figure 1 sweep** wall time: the legacy serial harness
//!   (one scenario build per algorithm per seed, `Simulation`-based
//!   revenue) vs the optimized harness at `--threads 1` and
//!   `--threads N`;
//! * **Monte-Carlo failure injection** trial throughput, serial vs the
//!   chunked deterministic parallel injector.
//!
//! `--check PATH` additionally compares the optimized decide()
//! requests/sec against a previously emitted JSON and exits non-zero if
//! any algorithm regressed by more than 30% — the CI perf smoke.

use std::fmt::Write as _;
use std::time::Instant;

use mec_sim::failure::{inject_failures, inject_failures_parallel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{run_online, OnlineScheduler};
use vnfrel_bench::legacy::{
    legacy_fig1_both, LegacyOffsiteGreedy, LegacyOffsitePrimalDual, LegacyOnsiteGreedy,
    LegacyOnsitePrimalDual,
};
use vnfrel_bench::{fig1_both_sweep, threads_from_args, Scenario, ScenarioParams};

/// Maximum tolerated decide() throughput regression vs the baseline.
const MAX_REGRESSION: f64 = 0.30;

/// Wall time of the best of `reps` runs of `f`, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Optimized-vs-legacy decide() throughput for one algorithm pair.
struct DecidePair {
    name: &'static str,
    optimized_rps: f64,
    legacy_rps: f64,
}

fn decide_throughput(scenario: &Scenario, reps: usize) -> Vec<DecidePair> {
    let n = scenario.requests.len() as f64;
    let run = |alg: &mut dyn OnlineScheduler| {
        run_online(alg, &scenario.requests).expect("valid stream");
    };
    let mut out = Vec::new();
    let secs = best_of(reps, || {
        let mut a = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
        run(&mut a);
    });
    let legacy_secs = best_of(reps, || {
        let mut a =
            LegacyOnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
        run(&mut a);
    });
    out.push(DecidePair {
        name: "alg1",
        optimized_rps: n / secs,
        legacy_rps: n / legacy_secs,
    });
    let secs = best_of(reps, || {
        let mut a = OnsiteGreedy::new(&scenario.instance);
        run(&mut a);
    });
    let legacy_secs = best_of(reps, || {
        let mut a = LegacyOnsiteGreedy::new(&scenario.instance);
        run(&mut a);
    });
    out.push(DecidePair {
        name: "greedy_onsite",
        optimized_rps: n / secs,
        legacy_rps: n / legacy_secs,
    });
    let secs = best_of(reps, || {
        let mut a = OffsitePrimalDual::new(&scenario.instance);
        run(&mut a);
    });
    let legacy_secs = best_of(reps, || {
        let mut a = LegacyOffsitePrimalDual::new(&scenario.instance);
        run(&mut a);
    });
    out.push(DecidePair {
        name: "alg2",
        optimized_rps: n / secs,
        legacy_rps: n / legacy_secs,
    });
    let secs = best_of(reps, || {
        let mut a = OffsiteGreedy::new(&scenario.instance);
        run(&mut a);
    });
    let legacy_secs = best_of(reps, || {
        let mut a = LegacyOffsiteGreedy::new(&scenario.instance);
        run(&mut a);
    });
    out.push(DecidePair {
        name: "greedy_offsite",
        optimized_rps: n / secs,
        legacy_rps: n / legacy_secs,
    });
    out
}

/// Pulls `"<name>": { "optimized_rps": <number>` out of a previously
/// emitted report without a JSON dependency.
fn baseline_rps(json: &str, name: &str) -> Option<f64> {
    let start = json.find(&format!("\"{name}\""))?;
    let tail = &json[start..];
    let field = tail.find("\"optimized_rps\":")?;
    let tail = &tail[field + "\"optimized_rps\":".len()..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = threads_from_args().max(4);
    let arg_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "results/BENCH_schedule.json".to_string());
    let check_path = arg_value("--check");

    let (sizes, seeds, decide_requests, sweep_reps, decide_reps, trials): (
        Vec<usize>,
        Vec<u64>,
        usize,
        usize,
        usize,
        usize,
    ) = if quick {
        // decide_requests stays at the full-mode value so the --check
        // regression gate compares like-for-like scenarios.
        ((1..=4).map(|i| i * 50).collect(), vec![1], 800, 3, 5, 4_000)
    } else {
        (
            (1..=8).map(|i| i * 100).collect(),
            vec![1, 2, 3],
            800,
            5,
            9,
            20_000,
        )
    };

    // --- decide() throughput, optimized vs legacy -----------------------
    let scenario = Scenario::build(&ScenarioParams {
        requests: decide_requests,
        ..ScenarioParams::default()
    });
    let decide = decide_throughput(&scenario, decide_reps);
    println!("decide() throughput ({decide_requests} requests):");
    for p in &decide {
        println!(
            "  {:<14} optimized {:>12.0} req/s   legacy {:>12.0} req/s   speedup {:.2}x",
            p.name,
            p.optimized_rps,
            p.legacy_rps,
            p.optimized_rps / p.legacy_rps
        );
    }

    // --- end-to-end Figure 1 sweep --------------------------------------
    // Correctness first: the two harness generations must produce the
    // same tables, else the race is meaningless.
    let (on_old, off_old) = legacy_fig1_both(&sizes, &seeds);
    let (on_new, off_new) = fig1_both_sweep(&sizes, &seeds, 1);
    assert_eq!(on_old, on_new, "legacy and optimized fig1 tables differ");
    assert_eq!(off_old, off_new, "legacy and optimized fig1 tables differ");

    let legacy_secs = best_of(sweep_reps, || {
        let _ = legacy_fig1_both(&sizes, &seeds);
    });
    let serial_secs = best_of(sweep_reps, || {
        let _ = fig1_both_sweep(&sizes, &seeds, 1);
    });
    let threaded_secs = best_of(sweep_reps, || {
        let _ = fig1_both_sweep(&sizes, &seeds, threads);
    });
    let points = (sizes.len() * seeds.len()) as f64;
    println!(
        "\nFigure 1 sweep ({} sizes x {} seeds):",
        sizes.len(),
        seeds.len()
    );
    println!(
        "  legacy serial       {:>9.1} ms   ({:.2} ms/point)",
        legacy_secs * 1e3,
        legacy_secs * 1e3 / points
    );
    println!(
        "  optimized threads=1 {:>9.1} ms   speedup {:.2}x",
        serial_secs * 1e3,
        legacy_secs / serial_secs
    );
    println!(
        "  optimized threads={threads} {:>9.1} ms   speedup {:.2}x",
        threaded_secs * 1e3,
        legacy_secs / threaded_secs
    );

    // --- Monte-Carlo failure injection ----------------------------------
    let mut alg1 = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
    let schedule = run_online(&mut alg1, &scenario.requests).unwrap();
    let mc_serial_secs = best_of(3, || {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let _ = inject_failures(
            &scenario.instance,
            &scenario.requests,
            &schedule,
            trials,
            &mut rng,
        )
        .unwrap();
    });
    let mc_parallel_secs = best_of(3, || {
        let _ = inject_failures_parallel(
            &scenario.instance,
            &scenario.requests,
            &schedule,
            trials,
            11,
            threads,
        )
        .unwrap();
    });
    println!("\nMonte-Carlo injection ({trials} trials):");
    println!(
        "  serial   {:>9.0} trials/s",
        trials as f64 / mc_serial_secs
    );
    println!(
        "  threads={threads} {:>9.0} trials/s   speedup {:.2}x",
        trials as f64 / mc_parallel_secs,
        mc_serial_secs / mc_parallel_secs
    );

    // --- JSON report ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_schedule/v1\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let host_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"scenario\": {{ \"requests\": {decide_requests}, \"h_ratio\": 10.0, \"k_ratio\": 1.01, \"seed\": 1 }},"
    );
    json.push_str("  \"decide_throughput\": {\n");
    for (i, p) in decide.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"optimized_rps\": {:.1}, \"legacy_rps\": {:.1}, \"speedup\": {:.3} }}{}",
            p.name,
            p.optimized_rps,
            p.legacy_rps,
            p.optimized_rps / p.legacy_rps,
            if i + 1 < decide.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"fig1_sweep\": {\n");
    let _ = writeln!(
        json,
        "    \"sizes\": [{}],",
        sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "    \"seeds\": [{}],",
        seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "    \"legacy_serial_ms\": {:.3},", legacy_secs * 1e3);
    let _ = writeln!(
        json,
        "    \"optimized_serial_ms\": {:.3},",
        serial_secs * 1e3
    );
    let _ = writeln!(
        json,
        "    \"optimized_threaded_ms\": {:.3},",
        threaded_secs * 1e3
    );
    let _ = writeln!(
        json,
        "    \"legacy_ms_per_point\": {:.3},",
        legacy_secs * 1e3 / points
    );
    let _ = writeln!(
        json,
        "    \"optimized_threaded_ms_per_point\": {:.3},",
        threaded_secs * 1e3 / points
    );
    let _ = writeln!(
        json,
        "    \"speedup_serial_vs_legacy\": {:.3},",
        legacy_secs / serial_secs
    );
    let _ = writeln!(
        json,
        "    \"speedup_threaded_vs_legacy\": {:.3}",
        legacy_secs / threaded_secs
    );
    json.push_str("  },\n");
    json.push_str("  \"mc_injection\": {\n");
    let _ = writeln!(json, "    \"trials\": {trials},");
    let _ = writeln!(
        json,
        "    \"serial_trials_per_sec\": {:.1},",
        trials as f64 / mc_serial_secs
    );
    let _ = writeln!(
        json,
        "    \"parallel_trials_per_sec\": {:.1},",
        trials as f64 / mc_parallel_secs
    );
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3}",
        mc_serial_secs / mc_parallel_secs
    );
    json.push_str("  }\n}\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write report");
    println!("\nreport written to {out_path}");

    // --- regression gate -------------------------------------------------
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failed = false;
        for p in &decide {
            let Some(base) = baseline_rps(&baseline, p.name) else {
                panic!("baseline {path} lacks optimized_rps for {}", p.name);
            };
            let floor = base * (1.0 - MAX_REGRESSION);
            let ok = p.optimized_rps >= floor;
            println!(
                "check {:<14} {:>12.0} req/s vs baseline {:>12.0} (floor {:>12.0}) {}",
                p.name,
                p.optimized_rps,
                base,
                floor,
                if ok { "ok" } else { "REGRESSED" }
            );
            failed |= !ok;
        }
        if failed {
            eprintln!("perf check failed: decide() throughput regressed more than 30%");
            std::process::exit(1);
        }
        println!("perf check passed");
    }
}
