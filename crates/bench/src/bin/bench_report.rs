//! Machine-readable performance baseline: races the optimized hot path
//! and harness against the faithful pre-optimization copies in
//! `vnfrel_bench::legacy` and emits `results/BENCH_schedule.json`.
//!
//! Run with:
//! `cargo run --release -p vnfrel-bench --bin bench_report [--quick]
//!  [--threads N] [--out PATH] [--check PATH] [--trace-sample PATH]`
//!
//! Measurements:
//!
//! * **decide() throughput** (requests/sec) for the four online
//!   algorithms, optimized vs legacy, on one scarce scenario;
//! * **end-to-end Figure 1 sweep** wall time: the legacy serial harness
//!   (one scenario build per algorithm per seed, `Simulation`-based
//!   revenue) vs the optimized harness at `--threads 1` and
//!   `--threads N`;
//! * **Monte-Carlo failure injection** trial throughput, serial vs the
//!   chunked deterministic parallel injector.
//!
//! * **observability overhead**: the production schedulers at their
//!   `NoopSink` default vs the sink-free copies in
//!   `vnfrel_bench::uninstrumented` — the disabled trace hooks must
//!   compile away. The primary proof is deterministic: the noop-sink
//!   run must produce the identical schedule (revenue equality) with
//!   the identical number of heap allocations (leaked decision events
//!   must heap-allocate their `String`/`Vec` fields, so a hook that
//!   survives codegen shows up as thousands of extra allocations). A
//!   timed race is reported alongside and bounded by
//!   [`MAX_OBS_TIMED_OVERHEAD`] as a gross-regression catch-all; it is
//!   deliberately loose because wall-clock A/B between two separately
//!   placed copies of the same instruction stream carries a persistent
//!   code-placement bias (uop-cache and branch-alignment luck) of up to
//!   ~20% on microsecond-scale kernels, which no amount of repetition
//!   removes.
//!
//! `--check PATH` additionally compares the optimized decide()
//! requests/sec against a previously emitted JSON and exits non-zero if
//! any algorithm regressed by more than 30% — the CI perf smoke. The
//! same flag arms the in-process observability gate: the deterministic
//! equivalence asserts plus the timed bound above.
//!
//! `--trace-sample PATH` writes a small decision-trace JSONL (Algorithm 1
//! over the decide() scenario) for artifact upload and schema eyeballing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mec_obs::{to_json, RingSink};
use mec_sim::failure::{inject_failures, inject_failures_parallel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{run_online, OnlineScheduler};
use vnfrel_bench::legacy::{
    legacy_fig1_both, LegacyOffsiteGreedy, LegacyOffsitePrimalDual, LegacyOnsiteGreedy,
    LegacyOnsitePrimalDual,
};
use vnfrel_bench::uninstrumented::{
    UninstrumentedOffsiteGreedy, UninstrumentedOffsitePrimalDual, UninstrumentedOnsiteGreedy,
    UninstrumentedOnsitePrimalDual,
};
use vnfrel_bench::{fig1_both_sweep, threads_from_args, Scenario, ScenarioParams};

/// Maximum tolerated decide() throughput regression vs the baseline.
const MAX_REGRESSION: f64 = 0.30;

/// Maximum tolerated *timed* decide() slowdown of the noop-sink
/// production schedulers vs their sink-free (`uninstrumented`) twins.
///
/// The zero-overhead claim itself is enforced deterministically (see
/// `obs_overhead`): identical schedules and identical heap-allocation
/// counts, which any surviving hook breaks by thousands. This timed
/// bound only exists to catch gross non-allocating regressions, and is
/// sized to sit above the measured code-placement noise between two
/// separately placed copies of the same instruction stream (observed up
/// to ~20% on these ~1ms kernels; an `objdump --disassemble` diff of
/// the monomorphized `decide` symbols shows identical instructions
/// modulo basic-block order and alignment padding). It mirrors the 30%
/// [`MAX_REGRESSION`] margin used for the same reason.
const MAX_OBS_TIMED_OVERHEAD: f64 = 0.25;

/// Counts every heap allocation so the observability section can assert
/// that a noop-sink run allocates *exactly* as often as its sink-free
/// twin — the placement-immune form of "disabled hooks compile away"
/// (leaked decision events must allocate for their `String`/`Vec`
/// fields).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` for every operation; only adds counting.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Request count for the observability-overhead race. Much larger than
/// the decide() race so each timed run is ~1ms+ and per-rep timer noise
/// amortizes; the residual persistent bias (instruction placement) is
/// why the timed bound is loose — see [`MAX_OBS_TIMED_OVERHEAD`].
const OBS_REQUESTS: usize = 20_000;

/// Wall time of the best of `reps` runs of `f`, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Optimized-vs-legacy decide() throughput for one algorithm pair.
struct DecidePair {
    name: &'static str,
    optimized_rps: f64,
    legacy_rps: f64,
}

fn decide_throughput(scenario: &Scenario, reps: usize) -> Vec<DecidePair> {
    let n = scenario.requests.len() as f64;
    let run = |alg: &mut dyn OnlineScheduler| {
        run_online(alg, &scenario.requests).expect("valid stream");
    };
    let mut out = Vec::new();
    let secs = best_of(reps, || {
        let mut a = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
        run(&mut a);
    });
    let legacy_secs = best_of(reps, || {
        let mut a =
            LegacyOnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
        run(&mut a);
    });
    out.push(DecidePair {
        name: "alg1",
        optimized_rps: n / secs,
        legacy_rps: n / legacy_secs,
    });
    let secs = best_of(reps, || {
        let mut a = OnsiteGreedy::new(&scenario.instance);
        run(&mut a);
    });
    let legacy_secs = best_of(reps, || {
        let mut a = LegacyOnsiteGreedy::new(&scenario.instance);
        run(&mut a);
    });
    out.push(DecidePair {
        name: "greedy_onsite",
        optimized_rps: n / secs,
        legacy_rps: n / legacy_secs,
    });
    let secs = best_of(reps, || {
        let mut a = OffsitePrimalDual::new(&scenario.instance);
        run(&mut a);
    });
    let legacy_secs = best_of(reps, || {
        let mut a = LegacyOffsitePrimalDual::new(&scenario.instance);
        run(&mut a);
    });
    out.push(DecidePair {
        name: "alg2",
        optimized_rps: n / secs,
        legacy_rps: n / legacy_secs,
    });
    let secs = best_of(reps, || {
        let mut a = OffsiteGreedy::new(&scenario.instance);
        run(&mut a);
    });
    let legacy_secs = best_of(reps, || {
        let mut a = LegacyOffsiteGreedy::new(&scenario.instance);
        run(&mut a);
    });
    out.push(DecidePair {
        name: "greedy_offsite",
        optimized_rps: n / secs,
        legacy_rps: n / legacy_secs,
    });
    out
}

/// Noop-sink production scheduler vs its sink-free twin.
struct ObsPair {
    name: &'static str,
    noop_rps: f64,
    uninstrumented_rps: f64,
}

impl ObsPair {
    /// Fractional slowdown of the noop path (negative = noop faster).
    /// Includes code-placement bias either way; the deterministic
    /// equivalence asserts in `obs_overhead` carry the precision claim.
    fn overhead(&self) -> f64 {
        self.uninstrumented_rps / self.noop_rps - 1.0
    }
}

/// Races the noop-sink schedulers against the uninstrumented copies.
/// Measurements are interleaved per repetition so both sides see the
/// same thermal/cache conditions.
///
/// Two placement-immune equivalence checks run first: both generations
/// must produce the same schedule (same revenue) **and the same exact
/// number of heap allocations** over the stream. The decision events
/// heap-allocate by construction (`String` algorithm labels, per-site
/// vectors), so instrumentation that fails to compile away under
/// `NoopSink` shows up as thousands of extra allocations — a
/// deterministic signal wall-clock timing cannot fake either way.
fn obs_overhead(scenario: &Scenario, reps: usize) -> Vec<ObsPair> {
    let n = scenario.requests.len() as f64;
    let run = |alg: &mut dyn OnlineScheduler| {
        run_online(alg, &scenario.requests).expect("valid stream");
    };
    macro_rules! assert_equivalent {
        ($name:literal, $noop:expr, $base:expr) => {{
            let mut a = $noop;
            let a0 = ALLOCATIONS.load(Ordering::Relaxed);
            let ra = run_online(&mut a, &scenario.requests).expect("valid stream");
            let a1 = ALLOCATIONS.load(Ordering::Relaxed);
            let mut b = $base;
            let b0 = ALLOCATIONS.load(Ordering::Relaxed);
            let rb = run_online(&mut b, &scenario.requests).expect("valid stream");
            let b1 = ALLOCATIONS.load(Ordering::Relaxed);
            assert_eq!(
                ra.revenue(),
                rb.revenue(),
                "{}: noop-sink and uninstrumented schedules diverge",
                $name
            );
            assert_eq!(
                a1 - a0,
                b1 - b0,
                "{}: noop-sink run allocates {} times, uninstrumented {} — \
                 trace hooks are not compiling away",
                $name,
                a1 - a0,
                b1 - b0
            );
        }};
    }
    assert_equivalent!(
        "alg1",
        OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap(),
        UninstrumentedOnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap()
    );
    assert_equivalent!(
        "greedy_onsite",
        OnsiteGreedy::new(&scenario.instance),
        UninstrumentedOnsiteGreedy::new(&scenario.instance)
    );
    assert_equivalent!(
        "alg2",
        OffsitePrimalDual::new(&scenario.instance),
        UninstrumentedOffsitePrimalDual::new(&scenario.instance)
    );
    assert_equivalent!(
        "greedy_offsite",
        OffsiteGreedy::new(&scenario.instance),
        UninstrumentedOffsiteGreedy::new(&scenario.instance)
    );

    macro_rules! race {
        ($name:literal, $noop:expr, $base:expr) => {{
            let mut noop_best = f64::INFINITY;
            let mut base_best = f64::INFINITY;
            for _ in 0..reps {
                let t = Instant::now();
                let mut a = $noop;
                run(&mut a);
                noop_best = noop_best.min(t.elapsed().as_secs_f64());
                let t = Instant::now();
                let mut b = $base;
                run(&mut b);
                base_best = base_best.min(t.elapsed().as_secs_f64());
            }
            ObsPair {
                name: $name,
                noop_rps: n / noop_best,
                uninstrumented_rps: n / base_best,
            }
        }};
    }
    vec![
        race!(
            "alg1",
            OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap(),
            UninstrumentedOnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce)
                .unwrap()
        ),
        race!(
            "greedy_onsite",
            OnsiteGreedy::new(&scenario.instance),
            UninstrumentedOnsiteGreedy::new(&scenario.instance)
        ),
        race!(
            "alg2",
            OffsitePrimalDual::new(&scenario.instance),
            UninstrumentedOffsitePrimalDual::new(&scenario.instance)
        ),
        race!(
            "greedy_offsite",
            OffsiteGreedy::new(&scenario.instance),
            UninstrumentedOffsiteGreedy::new(&scenario.instance)
        ),
    ]
}

/// Pulls `"<name>": { "optimized_rps": <number>` out of a previously
/// emitted report without a JSON dependency.
fn baseline_rps(json: &str, name: &str) -> Option<f64> {
    let start = json.find(&format!("\"{name}\""))?;
    let tail = &json[start..];
    let field = tail.find("\"optimized_rps\":")?;
    let tail = &tail[field + "\"optimized_rps\":".len()..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = threads_from_args().max(4);
    let arg_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "results/BENCH_schedule.json".to_string());
    let check_path = arg_value("--check");
    let trace_sample_path = arg_value("--trace-sample");

    let (sizes, seeds, decide_requests, sweep_reps, decide_reps, trials): (
        Vec<usize>,
        Vec<u64>,
        usize,
        usize,
        usize,
        usize,
    ) = if quick {
        // decide_requests stays at the full-mode value so the --check
        // regression gate compares like-for-like scenarios.
        ((1..=4).map(|i| i * 50).collect(), vec![1], 800, 3, 5, 4_000)
    } else {
        (
            (1..=8).map(|i| i * 100).collect(),
            vec![1, 2, 3],
            800,
            5,
            9,
            20_000,
        )
    };

    // --- decide() throughput, optimized vs legacy -----------------------
    let scenario = Scenario::build(&ScenarioParams {
        requests: decide_requests,
        ..ScenarioParams::default()
    });
    let decide = decide_throughput(&scenario, decide_reps);
    println!("decide() throughput ({decide_requests} requests):");
    for p in &decide {
        println!(
            "  {:<14} optimized {:>12.0} req/s   legacy {:>12.0} req/s   speedup {:.2}x",
            p.name,
            p.optimized_rps,
            p.legacy_rps,
            p.optimized_rps / p.legacy_rps
        );
    }

    // --- observability overhead (noop sink vs no hooks at all) ----------
    // Deterministic equivalence asserts (same revenue, same allocation
    // count) run inside `obs_overhead` before the timing race. The race
    // itself uses a much larger stream than the decide() race so each
    // timed run lasts ~1ms and per-rep timer noise amortizes.
    let obs_scenario = Scenario::build(&ScenarioParams {
        requests: OBS_REQUESTS,
        ..ScenarioParams::default()
    });
    let obs = obs_overhead(&obs_scenario, decide_reps.max(9));
    println!("\nobservability overhead (noop sink vs uninstrumented):");
    println!("  deterministic: schedules and allocation counts identical");
    for p in &obs {
        println!(
            "  {:<14} noop {:>12.0} req/s   uninstrumented {:>12.0} req/s   timed gap {:>+6.2}%",
            p.name,
            p.noop_rps,
            p.uninstrumented_rps,
            p.overhead() * 100.0
        );
    }

    // --- optional decision-trace sample ---------------------------------
    if let Some(path) = &trace_sample_path {
        let mut alg = OnsitePrimalDual::with_sink(
            &scenario.instance,
            CapacityPolicy::Enforce,
            RingSink::new(scenario.requests.len()),
        )
        .unwrap();
        run_online(&mut alg, &scenario.requests).expect("valid stream");
        let mut body = String::new();
        for event in alg.into_sink().events() {
            body.push_str(&to_json(event));
            body.push('\n');
        }
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create trace-sample directory");
        }
        std::fs::write(path, body)
            .unwrap_or_else(|e| panic!("cannot write trace sample {path}: {e}"));
        eprintln!("trace sample written to {path}");
    }

    // --- end-to-end Figure 1 sweep --------------------------------------
    // Correctness first: the two harness generations must produce the
    // same tables, else the race is meaningless.
    let (on_old, off_old) = legacy_fig1_both(&sizes, &seeds);
    let (on_new, off_new) = fig1_both_sweep(&sizes, &seeds, 1);
    assert_eq!(on_old, on_new, "legacy and optimized fig1 tables differ");
    assert_eq!(off_old, off_new, "legacy and optimized fig1 tables differ");

    let legacy_secs = best_of(sweep_reps, || {
        let _ = legacy_fig1_both(&sizes, &seeds);
    });
    let serial_secs = best_of(sweep_reps, || {
        let _ = fig1_both_sweep(&sizes, &seeds, 1);
    });
    let threaded_secs = best_of(sweep_reps, || {
        let _ = fig1_both_sweep(&sizes, &seeds, threads);
    });
    let points = (sizes.len() * seeds.len()) as f64;
    println!(
        "\nFigure 1 sweep ({} sizes x {} seeds):",
        sizes.len(),
        seeds.len()
    );
    println!(
        "  legacy serial       {:>9.1} ms   ({:.2} ms/point)",
        legacy_secs * 1e3,
        legacy_secs * 1e3 / points
    );
    println!(
        "  optimized threads=1 {:>9.1} ms   speedup {:.2}x",
        serial_secs * 1e3,
        legacy_secs / serial_secs
    );
    println!(
        "  optimized threads={threads} {:>9.1} ms   speedup {:.2}x",
        threaded_secs * 1e3,
        legacy_secs / threaded_secs
    );

    // --- Monte-Carlo failure injection ----------------------------------
    let mut alg1 = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
    let schedule = run_online(&mut alg1, &scenario.requests).unwrap();
    let mc_serial_secs = best_of(3, || {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let _ = inject_failures(
            &scenario.instance,
            &scenario.requests,
            &schedule,
            trials,
            &mut rng,
        )
        .unwrap();
    });
    let mc_parallel_secs = best_of(3, || {
        let _ = inject_failures_parallel(
            &scenario.instance,
            &scenario.requests,
            &schedule,
            trials,
            11,
            threads,
        )
        .unwrap();
    });
    println!("\nMonte-Carlo injection ({trials} trials):");
    println!(
        "  serial   {:>9.0} trials/s",
        trials as f64 / mc_serial_secs
    );
    println!(
        "  threads={threads} {:>9.0} trials/s   speedup {:.2}x",
        trials as f64 / mc_parallel_secs,
        mc_serial_secs / mc_parallel_secs
    );

    // --- JSON report ----------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_schedule/v1\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"threads\": {threads},");
    let host_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"scenario\": {{ \"requests\": {decide_requests}, \"h_ratio\": 10.0, \"k_ratio\": 1.01, \"seed\": 1 }},"
    );
    json.push_str("  \"decide_throughput\": {\n");
    for (i, p) in decide.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"optimized_rps\": {:.1}, \"legacy_rps\": {:.1}, \"speedup\": {:.3} }}{}",
            p.name,
            p.optimized_rps,
            p.legacy_rps,
            p.optimized_rps / p.legacy_rps,
            if i + 1 < decide.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"obs_overhead\": {\n");
    json.push_str("    \"deterministic_equivalence\": \"same revenue and same heap-allocation count as the sink-free copies\",\n");
    let _ = writeln!(json, "    \"timed_threshold\": {MAX_OBS_TIMED_OVERHEAD},");
    let max_overhead = obs.iter().map(ObsPair::overhead).fold(f64::MIN, f64::max);
    let _ = writeln!(json, "    \"max_timed_gap\": {max_overhead:.4},");
    for (i, p) in obs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"noop_rps\": {:.1}, \"uninstrumented_rps\": {:.1}, \
             \"timed_gap\": {:.4} }}{}",
            p.name,
            p.noop_rps,
            p.uninstrumented_rps,
            p.overhead(),
            if i + 1 < obs.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    json.push_str("  \"fig1_sweep\": {\n");
    let _ = writeln!(
        json,
        "    \"sizes\": [{}],",
        sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "    \"seeds\": [{}],",
        seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "    \"legacy_serial_ms\": {:.3},", legacy_secs * 1e3);
    let _ = writeln!(
        json,
        "    \"optimized_serial_ms\": {:.3},",
        serial_secs * 1e3
    );
    let _ = writeln!(
        json,
        "    \"optimized_threaded_ms\": {:.3},",
        threaded_secs * 1e3
    );
    let _ = writeln!(
        json,
        "    \"legacy_ms_per_point\": {:.3},",
        legacy_secs * 1e3 / points
    );
    let _ = writeln!(
        json,
        "    \"optimized_threaded_ms_per_point\": {:.3},",
        threaded_secs * 1e3 / points
    );
    let _ = writeln!(
        json,
        "    \"speedup_serial_vs_legacy\": {:.3},",
        legacy_secs / serial_secs
    );
    let _ = writeln!(
        json,
        "    \"speedup_threaded_vs_legacy\": {:.3}",
        legacy_secs / threaded_secs
    );
    json.push_str("  },\n");
    json.push_str("  \"mc_injection\": {\n");
    let _ = writeln!(json, "    \"trials\": {trials},");
    let _ = writeln!(
        json,
        "    \"serial_trials_per_sec\": {:.1},",
        trials as f64 / mc_serial_secs
    );
    let _ = writeln!(
        json,
        "    \"parallel_trials_per_sec\": {:.1},",
        trials as f64 / mc_parallel_secs
    );
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3}",
        mc_serial_secs / mc_parallel_secs
    );
    json.push_str("  }\n}\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("report written to {out_path}");

    // --- regression gate -------------------------------------------------
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failed = false;
        for p in &decide {
            let Some(base) = baseline_rps(&baseline, p.name) else {
                panic!("baseline {path} lacks optimized_rps for {}", p.name);
            };
            let floor = base * (1.0 - MAX_REGRESSION);
            let ok = p.optimized_rps >= floor;
            println!(
                "check {:<14} {:>12.0} req/s vs baseline {:>12.0} (floor {:>12.0}) {}",
                p.name,
                p.optimized_rps,
                base,
                floor,
                if ok { "ok" } else { "REGRESSED" }
            );
            failed |= !ok;
        }
        // The timed observability gate re-measures once before failing:
        // the deterministic asserts inside `obs_overhead` already carry
        // the compile-away proof, so this bound only has to catch gross
        // consistent slowdowns, and one unlucky interleaving on a noisy
        // host must not fail CI.
        let mut worst = &obs;
        let remeasured;
        if worst.iter().any(|p| p.overhead() > MAX_OBS_TIMED_OVERHEAD) {
            eprintln!("obs timed gap above threshold, re-measuring once");
            remeasured = obs_overhead(&obs_scenario, decide_reps.max(9));
            worst = &remeasured;
        }
        for p in worst {
            let ok = p.overhead() <= MAX_OBS_TIMED_OVERHEAD;
            println!(
                "check obs {:<14} timed gap {:>+6.2}% (limit {:.0}%) {}",
                p.name,
                p.overhead() * 100.0,
                MAX_OBS_TIMED_OVERHEAD * 100.0,
                if ok { "ok" } else { "TOO SLOW" }
            );
            failed |= !ok;
        }
        if failed {
            eprintln!(
                "perf check failed: decide() regressed more than 30% vs the baseline \
                 or the noop-sink timed gap exceeded {:.0}%",
                MAX_OBS_TIMED_OVERHEAD * 100.0
            );
            std::process::exit(1);
        }
        println!("perf check passed");
    }
}
