//! Criterion benches for the Figure 1 sweeps: online scheduling
//! throughput of Algorithm 1/2 and the greedy baselines as the request
//! count grows (reduced sizes — the full curves come from the `fig1a`
//! and `fig1b` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vnfrel_bench::{Scenario, ScenarioParams};

fn bench_fig1a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1a_onsite_revenue");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let scenario = Scenario::build(&ScenarioParams {
            requests: n,
            ..ScenarioParams::default()
        });
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &scenario, |b, s| {
            b.iter(|| black_box(s.alg1_revenue()))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &scenario, |b, s| {
            b.iter(|| black_box(s.greedy_onsite_revenue()))
        });
    }
    group.finish();
}

fn bench_fig1b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1b_offsite_revenue");
    group.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let scenario = Scenario::build(&ScenarioParams {
            requests: n,
            ..ScenarioParams::default()
        });
        group.bench_with_input(BenchmarkId::new("algorithm2", n), &scenario, |b, s| {
            b.iter(|| black_box(s.alg2_revenue()))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &scenario, |b, s| {
            b.iter(|| black_box(s.greedy_offsite_revenue()))
        });
    }
    group.finish();
}

fn bench_offline_opt(c: &mut Criterion) {
    // The CPLEX-substitute: exact B&B at a small size, LP bound at a
    // medium size.
    let mut group = c.benchmark_group("fig1_offline_optimum");
    group.sample_size(10);
    let small = Scenario::build(&ScenarioParams {
        requests: 40,
        ..ScenarioParams::default()
    });
    group.bench_function("onsite_bnb_exact_40", |b| {
        b.iter(|| black_box(small.offline_revenue(vnfrel::Scheme::OnSite, usize::MAX)))
    });
    let medium = Scenario::build(&ScenarioParams {
        requests: 150,
        ..ScenarioParams::default()
    });
    group.bench_function("onsite_lp_bound_150", |b| {
        b.iter(|| black_box(medium.offline_revenue(vnfrel::Scheme::OnSite, 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1a, bench_fig1b, bench_offline_opt);
criterion_main!(benches);
