//! Criterion benches for the Figure 2 parameter sweeps: sensitivity of
//! the schedulers to the payment-rate variation H and the
//! cloudlet-reliability variation K (reduced sizes — full curves come
//! from the `fig2a` / `fig2b` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vnfrel_bench::{Scenario, ScenarioParams};

fn bench_h_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a_payment_variation");
    group.sample_size(10);
    for &h in &[1.0f64, 5.0, 10.0] {
        let scenario = Scenario::build(&ScenarioParams {
            requests: 200,
            h_ratio: h,
            ..ScenarioParams::default()
        });
        group.bench_with_input(
            BenchmarkId::new("algorithm1", format!("H{h}")),
            &scenario,
            |b, s| b.iter(|| black_box(s.alg1_revenue())),
        );
        group.bench_with_input(
            BenchmarkId::new("algorithm2", format!("H{h}")),
            &scenario,
            |b, s| b.iter(|| black_box(s.alg2_revenue())),
        );
    }
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2b_reliability_variation");
    group.sample_size(10);
    for &k in &[1.0f64, 1.05, 1.1] {
        let scenario = Scenario::build(&ScenarioParams {
            requests: 200,
            k_ratio: k,
            ..ScenarioParams::default()
        });
        group.bench_with_input(
            BenchmarkId::new("algorithm2", format!("K{k}")),
            &scenario,
            |b, s| b.iter(|| black_box(s.alg2_revenue())),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_offsite", format!("K{k}")),
            &scenario,
            |b, s| b.iter(|| black_box(s.greedy_offsite_revenue())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_h_sweep, bench_k_sweep);
criterion_main!(benches);
