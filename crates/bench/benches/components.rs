//! Micro-benchmarks for the substrates: reliability arithmetic, the
//! simplex/B&B solver, workload generation, graph queries, and
//! Monte-Carlo failure injection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lp_solver::{solve_lp, solve_mip, BnbConfig, Cmp, Model, Sense};
use mec_sim::{failure, Simulation};
use mec_topology::generators::{self, CloudletPlacement};
use mec_topology::{NodeId, Reliability};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::reliability::{offsite_availability, onsite_instances};
use vnfrel_bench::{Scenario, ScenarioParams};

fn bench_reliability_math(c: &mut Criterion) {
    let vnf = Reliability::new(0.9).unwrap();
    let cl = Reliability::new(0.9999).unwrap();
    let req = Reliability::new(0.995).unwrap();
    c.bench_function("reliability/onsite_instances", |b| {
        b.iter(|| {
            black_box(onsite_instances(
                black_box(vnf),
                black_box(cl),
                black_box(req),
            ))
        })
    });
    let sites: Vec<Reliability> = (0..8)
        .map(|i| Reliability::new(0.9 + 0.01 * i as f64).unwrap())
        .collect();
    c.bench_function("reliability/offsite_availability_8_sites", |b| {
        b.iter(|| black_box(offsite_availability(vnf, sites.iter().copied())))
    });
}

fn bench_solver(c: &mut Criterion) {
    // A 60-var, 20-row packing LP.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut model = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..60)
        .map(|_| {
            model
                .add_var(0.0, Some(1.0), rand::Rng::gen_range(&mut rng, 1.0..9.0))
                .unwrap()
        })
        .collect();
    for _ in 0..20 {
        let terms: Vec<_> = vars
            .iter()
            .map(|&v| (v, rand::Rng::gen_range(&mut rng, 0.1..2.0)))
            .collect();
        let rhs: f64 = terms.iter().map(|(_, w)| w).sum::<f64>() * 0.35;
        model.add_constraint(terms, Cmp::Le, rhs).unwrap();
    }
    c.bench_function("solver/simplex_60x20", |b| {
        b.iter(|| black_box(solve_lp(&model).unwrap()))
    });

    // A 16-item binary knapsack solved exactly.
    let mut knap = Model::new(Sense::Maximize);
    let kvars: Vec<_> = (0..16)
        .map(|i| knap.add_binary_var(((i * 7) % 13 + 1) as f64).unwrap())
        .collect();
    let terms: Vec<_> = kvars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, ((i * 5) % 7 + 1) as f64))
        .collect();
    let rhs: f64 = terms.iter().map(|(_, w)| w).sum::<f64>() * 0.4;
    knap.add_constraint(terms, Cmp::Le, rhs).unwrap();
    c.bench_function("solver/bnb_knapsack_16", |b| {
        b.iter(|| black_box(solve_mip(&knap, &BnbConfig::default()).unwrap()))
    });
}

fn bench_workload(c: &mut Criterion) {
    let catalog = VnfCatalog::standard();
    let gen = RequestGenerator::new(Horizon::new(48));
    c.bench_function("workload/generate_1000_requests", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            black_box(gen.generate(1000, &catalog, &mut rng).unwrap())
        })
    });
}

fn bench_topology(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let net =
        generators::barabasi_albert(200, 3, &CloudletPlacement::balanced(), &mut rng).unwrap();
    c.bench_function("topology/dijkstra_200_nodes", |b| {
        b.iter(|| black_box(net.shortest_path(NodeId(0), NodeId(199))))
    });
    c.bench_function("topology/generate_ba_200", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            black_box(
                generators::barabasi_albert(200, 3, &CloudletPlacement::balanced(), &mut rng)
                    .unwrap(),
            )
        })
    });
}

fn bench_failure_injection(c: &mut Criterion) {
    let scenario = Scenario::build(&ScenarioParams {
        requests: 100,
        ..ScenarioParams::default()
    });
    let sim = Simulation::new(&scenario.instance, &scenario.requests).unwrap();
    let mut alg = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
    let schedule = sim.run(&mut alg).unwrap().schedule;
    c.bench_function("failure/inject_1000_trials_100_requests", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            black_box(
                failure::inject_failures(
                    &scenario.instance,
                    &scenario.requests,
                    &schedule,
                    1000,
                    &mut rng,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_chain_alloc(c: &mut Criterion) {
    let stages: Vec<(Reliability, u64)> = vec![
        (Reliability::new(0.99).unwrap(), 2),
        (Reliability::new(0.9).unwrap(), 3),
        (Reliability::new(0.95).unwrap(), 1),
        (Reliability::new(0.9995).unwrap(), 1),
    ];
    let rc = Reliability::new(0.9999).unwrap();
    let rq = Reliability::new(0.995).unwrap();
    c.bench_function("chain/allocate_replicas_4_stages", |b| {
        b.iter(|| {
            black_box(vnfrel::chain::alloc::allocate_replicas(
                black_box(&stages),
                black_box(rc),
                black_box(rq),
            ))
        })
    });
}

fn bench_lp_format(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut model = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..200)
        .map(|_| {
            model
                .add_binary_var(rand::Rng::gen_range(&mut rng, 1.0..9.0))
                .unwrap()
        })
        .collect();
    for _ in 0..50 {
        let terms: Vec<_> = vars
            .iter()
            .map(|&v| (v, rand::Rng::gen_range(&mut rng, 0.0..2.0)))
            .collect();
        model.add_constraint(terms, Cmp::Le, 40.0).unwrap();
    }
    c.bench_function("solver/lp_format_200x50", |b| {
        b.iter(|| black_box(lp_solver::to_lp_format(&model)))
    });
}

/// decide() on the realistic Abilene scenario and on synthetic chains
/// that isolate the two hot-path scaling axes: the number of cloudlets
/// (candidate pricing is O(m) per request) and the request window length
/// (price updates rebuild a prefix row suffix, capacity checks scan the
/// window).
fn bench_decide(c: &mut Criterion) {
    use mec_topology::NetworkBuilder;
    use mec_workload::DurationModel;
    use vnfrel::offsite::OffsitePrimalDual;
    use vnfrel::{run_online, ProblemInstance};
    use vnfrel_bench::ScenarioBase;

    // Deep-scarcity Abilene point of the Figure 1 sweep.
    let s = ScenarioBase::new(1.01, 1).scenario(800, 10.0);
    c.bench_function("decide/onsite_abilene_800req", |b| {
        b.iter(|| {
            let mut alg = OnsitePrimalDual::new(&s.instance, CapacityPolicy::Enforce).unwrap();
            black_box(run_online(&mut alg, &s.requests).unwrap())
        })
    });
    c.bench_function("decide/offsite_abilene_800req", |b| {
        b.iter(|| {
            let mut alg = OffsitePrimalDual::new(&s.instance);
            black_box(run_online(&mut alg, &s.requests).unwrap())
        })
    });

    // Chain of `m` APs, one cloudlet each: candidate-set scaling.
    let chain = |m: usize| {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for i in 0..m {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, 10, Reliability::new(0.999 - 1e-5 * i as f64).unwrap())
                .unwrap();
        }
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(16)).unwrap()
    };
    for m in [4usize, 16, 64] {
        let inst = chain(m);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let reqs = RequestGenerator::new(inst.horizon())
            .reliability_band(0.9, 0.95)
            .unwrap()
            .generate(400, inst.catalog(), &mut rng)
            .unwrap();
        c.bench_function(&format!("decide/onsite_{m}_cloudlets_400req"), |b| {
            b.iter(|| {
                let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
                black_box(run_online(&mut alg, &reqs).unwrap())
            })
        });
        c.bench_function(&format!("decide/offsite_{m}_cloudlets_400req"), |b| {
            b.iter(|| {
                let mut alg = OffsitePrimalDual::new(&inst);
                black_box(run_online(&mut alg, &reqs).unwrap())
            })
        });
    }

    // Fixed-duration streams: window-length scaling on one instance.
    let inst = chain(8);
    for d in [1usize, 4, 8] {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let reqs = RequestGenerator::new(inst.horizon())
            .reliability_band(0.9, 0.95)
            .unwrap()
            .durations(DurationModel::Fixed(d))
            .unwrap()
            .generate(400, inst.catalog(), &mut rng)
            .unwrap();
        c.bench_function(&format!("decide/onsite_window_{d}_400req"), |b| {
            b.iter(|| {
                let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
                black_box(run_online(&mut alg, &reqs).unwrap())
            })
        });
    }
}

criterion_group!(
    benches,
    bench_reliability_math,
    bench_solver,
    bench_workload,
    bench_topology,
    bench_failure_injection,
    bench_chain_alloc,
    bench_lp_format,
    bench_decide
);
criterion_main!(benches);
