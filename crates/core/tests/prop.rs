//! Property-based tests tying all schedulers to the paper's guarantees:
//! feasibility of every schedule, weak duality, competitive ratio, and
//! dominance of the offline optimum.

use mec_topology::generators::{self, CloudletPlacement};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::bounds::OnsiteBounds;
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::{offline::OfflineConfig, CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{run_online, validate_schedule, OnlineScheduler, ProblemInstance, Scheme};

fn build_instance(seed: u64, cloudlets: usize, horizon: usize) -> ProblemInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement {
        fraction: 1.0,
        capacity: (6, 20),
        reliability: (0.99, 0.9999),
    };
    let net = generators::ring(cloudlets.max(1), &placement, &mut rng).unwrap();
    ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(horizon)).unwrap()
}

fn build_requests(
    instance: &ProblemInstance,
    seed: u64,
    count: usize,
) -> Vec<mec_workload::Request> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
    RequestGenerator::new(instance.horizon())
        .reliability_band(0.9, 0.98)
        .unwrap()
        .generate(count, instance.catalog(), &mut rng)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_onsite_scheduler_produces_feasible_schedules(
        seed in 0u64..500,
        cloudlets in 1usize..6,
        count in 1usize..80,
    ) {
        let inst = build_instance(seed, cloudlets, 16);
        let reqs = build_requests(&inst, seed, count);

        let mut alg1 = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let s1 = run_online(&mut alg1, &reqs).unwrap();
        let rep = validate_schedule(&inst, &reqs, &s1, Scheme::OnSite).unwrap();
        prop_assert!(rep.is_feasible(), "alg1 violations: {:?}", rep.violations);
        prop_assert!((rep.recomputed_revenue - s1.revenue()).abs() < 1e-6);

        let mut greedy = OnsiteGreedy::new(&inst);
        let sg = run_online(&mut greedy, &reqs).unwrap();
        let rep = validate_schedule(&inst, &reqs, &sg, Scheme::OnSite).unwrap();
        prop_assert!(rep.is_feasible(), "greedy violations: {:?}", rep.violations);
    }

    #[test]
    fn every_offsite_scheduler_produces_feasible_schedules(
        seed in 0u64..500,
        cloudlets in 1usize..6,
        count in 1usize..80,
    ) {
        let inst = build_instance(seed, cloudlets, 16);
        let reqs = build_requests(&inst, seed, count);

        let mut alg2 = OffsitePrimalDual::new(&inst);
        let s2 = run_online(&mut alg2, &reqs).unwrap();
        let rep = validate_schedule(&inst, &reqs, &s2, Scheme::OffSite).unwrap();
        prop_assert!(rep.is_feasible(), "alg2 violations: {:?}", rep.violations);
        prop_assert_eq!(alg2.ledger().max_overflow(), 0.0);

        let mut greedy = OffsiteGreedy::new(&inst);
        let sg = run_online(&mut greedy, &reqs).unwrap();
        let rep = validate_schedule(&inst, &reqs, &sg, Scheme::OffSite).unwrap();
        prop_assert!(rep.is_feasible(), "greedy violations: {:?}", rep.violations);
    }

    #[test]
    fn weak_duality_holds_for_algorithm1(
        seed in 0u64..300,
        cloudlets in 1usize..5,
        count in 1usize..60,
    ) {
        let inst = build_instance(seed, cloudlets, 12);
        let reqs = build_requests(&inst, seed, count);
        let mut alg1 = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let s = run_online(&mut alg1, &reqs).unwrap();
        prop_assert!(
            s.revenue() <= alg1.dual_objective() + 1e-6,
            "revenue {} > dual {}",
            s.revenue(),
            alg1.dual_objective()
        );
    }

    #[test]
    fn offline_optimum_dominates_online_algorithms(
        seed in 0u64..120,
        count in 1usize..16,
    ) {
        // Small instances so branch-and-bound is exact.
        let inst = build_instance(seed, 3, 8);
        let reqs = build_requests(&inst, seed, count);

        let offline = vnfrel::onsite::offline::solve(&inst, &reqs, &OfflineConfig::default())
            .unwrap();
        prop_assert!(offline.exact, "expected exact offline optimum");
        let opt = offline.revenue();

        let mut alg1 = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let s1 = run_online(&mut alg1, &reqs).unwrap();
        prop_assert!(s1.revenue() <= opt + 1e-6, "alg1 {} > opt {}", s1.revenue(), opt);

        let mut greedy = OnsiteGreedy::new(&inst);
        let sg = run_online(&mut greedy, &reqs).unwrap();
        prop_assert!(sg.revenue() <= opt + 1e-6, "greedy {} > opt {}", sg.revenue(), opt);

        // The offline schedule itself must be feasible.
        if let Some((_, schedule)) = &offline.incumbent {
            let rep = validate_schedule(&inst, &reqs, schedule, Scheme::OnSite).unwrap();
            prop_assert!(rep.is_feasible(), "offline violations: {:?}", rep.violations);
        }
    }

    #[test]
    fn offsite_offline_dominates_and_is_feasible(
        seed in 0u64..80,
        count in 1usize..10,
    ) {
        let inst = build_instance(seed, 3, 6);
        let reqs = build_requests(&inst, seed, count);
        let offline = vnfrel::offsite::offline::solve(&inst, &reqs, &OfflineConfig::default())
            .unwrap();
        let opt = offline.revenue();

        let mut alg2 = OffsitePrimalDual::new(&inst);
        let s2 = run_online(&mut alg2, &reqs).unwrap();
        prop_assert!(
            offline.incumbent.is_none() || s2.revenue() <= opt + 1e-6,
            "alg2 {} > opt {}",
            s2.revenue(),
            opt
        );
        if let Some((_, schedule)) = &offline.incumbent {
            let rep = validate_schedule(&inst, &reqs, schedule, Scheme::OffSite).unwrap();
            prop_assert!(rep.is_feasible(), "offline violations: {:?}", rep.violations);
        }
    }

    #[test]
    fn raw_alg1_respects_lemma8_violation_bound(
        seed in 0u64..200,
        count in 1usize..80,
    ) {
        let inst = build_instance(seed, 4, 12);
        let reqs = build_requests(&inst, seed, count);
        let mut raw = OnsitePrimalDual::new(&inst, CapacityPolicy::AllowViolations).unwrap();
        run_online(&mut raw, &reqs).unwrap();
        if let Ok(bounds) = OnsiteBounds::compute(&inst, &reqs) {
            // Lemma 8: per-(slot,cloudlet) load ≤ ξ ⇒ relative overflow
            // ≤ ξ/cap_min − 1 … we check the weaker, safe form.
            let observed = raw.ledger().max_overflow();
            let allowed = (bounds.xi() / bounds.cap_min - 1.0).max(0.0) + 1e-9;
            prop_assert!(
                observed <= allowed,
                "overflow {} exceeds Lemma 8 bound {} (xi={})",
                observed,
                allowed,
                bounds.xi()
            );
        }
    }

    #[test]
    fn scaled_policies_never_overflow_and_scale1_equals_enforce(
        seed in 0u64..150,
        count in 1usize..60,
    ) {
        // Scaling is not monotone in admissions (the gate perturbs which
        // cloudlet wins the argmin, which shifts later prices), but every
        // scaled run must stay within capacity, and σ = 1 must reproduce
        // the Enforce policy decision-for-decision.
        let inst = build_instance(seed, 3, 12);
        let reqs = build_requests(&inst, seed, count);
        for scale in [1.0, 1.5, 2.0, 4.0] {
            let mut alg =
                OnsitePrimalDual::new(&inst, CapacityPolicy::Scaled(scale)).unwrap();
            let s = run_online(&mut alg, &reqs).unwrap();
            prop_assert_eq!(alg.ledger().max_overflow(), 0.0);
            if scale == 1.0 {
                let mut enforce =
                    OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
                let e = run_online(&mut enforce, &reqs).unwrap();
                prop_assert_eq!(&s, &e, "Scaled(1.0) diverged from Enforce");
            }
        }
    }
}

mod chain_props {
    use super::*;
    use mec_topology::Reliability;
    use mec_workload::VnfTypeId;
    use vnfrel::chain::alloc::{allocate_replicas, chain_availability};
    use vnfrel::chain::{
        run_chain_online, ChainGreedy, ChainPrimalDual, ChainRequest, ChainRequestId,
    };

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn allocation_feasible_and_never_beaten_by_uniform(
            seed in 0u64..2000,
            stages_n in 1usize..5,
            rc in 0.985f64..0.9999,
            rq in 0.9f64..0.98,
        ) {
            prop_assume!(rc > rq);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let stages: Vec<(Reliability, u64)> = (0..stages_n)
                .map(|_| {
                    let r = Reliability::new(rand::Rng::gen_range(&mut rng, 0.9..0.9995)).unwrap();
                    (r, rand::Rng::gen_range(&mut rng, 1..4u64))
                })
                .collect();
            let rc = Reliability::new(rc).unwrap();
            let rq = Reliability::new(rq).unwrap();
            let alloc = allocate_replicas(&stages, rc, rq).expect("feasible when rc > rq");
            prop_assert!(alloc.replicas.iter().all(|&n| n >= 1));
            prop_assert!(
                chain_availability(&stages, &alloc.replicas, rc) >= rq.value(),
                "allocation must meet the requirement"
            );
            // A uniform allocation at the max per-stage count is feasible;
            // the DP must never cost more.
            let max_n = *alloc.replicas.iter().max().unwrap();
            let uniform = vec![max_n; stages.len()];
            if chain_availability(&stages, &uniform, rc) >= rq.value() {
                let uniform_cost: u64 = stages
                    .iter()
                    .zip(&uniform)
                    .map(|(&(_, c), &n)| u64::from(n) * c)
                    .sum();
                prop_assert!(alloc.total_compute <= uniform_cost);
            }
        }

        #[test]
        fn chain_schedulers_feasible_and_reliable(
            seed in 0u64..500,
            count in 1usize..50,
        ) {
            let inst = build_instance(seed, 3, 12);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xc4a1);
            let horizon = inst.horizon();
            let reqs: Vec<ChainRequest> = (0..count)
                .map(|i| {
                    let len = rand::Rng::gen_range(&mut rng, 1..4usize);
                    let stages: Vec<VnfTypeId> = (0..len)
                        .map(|_| VnfTypeId(rand::Rng::gen_range(&mut rng, 0..10usize)))
                        .collect();
                    let arrival = rand::Rng::gen_range(&mut rng, 0..horizon.len() - 1);
                    let duration = rand::Rng::gen_range(&mut rng, 1..=(horizon.len() - arrival).min(4));
                    ChainRequest::new(
                        ChainRequestId(i),
                        stages,
                        Reliability::new(rand::Rng::gen_range(&mut rng, 0.9..0.95)).unwrap(),
                        arrival,
                        duration,
                        rand::Rng::gen_range(&mut rng, 0.5..20.0),
                        horizon,
                    )
                    .unwrap()
                })
                .collect();

            let mut pd = ChainPrimalDual::new(&inst);
            let spd = run_chain_online(&mut pd, &reqs).unwrap();
            prop_assert_eq!(pd.ledger().max_overflow(), 0.0);

            let mut gr = ChainGreedy::new(&inst);
            let sgr = run_chain_online(&mut gr, &reqs).unwrap();
            prop_assert_eq!(gr.ledger().max_overflow(), 0.0);

            // Every admitted chain meets its end-to-end requirement.
            for (schedule, _name) in [(&spd, "pd"), (&sgr, "greedy")] {
                for r in &reqs {
                    if let Some(p) = schedule.placement(r.id()) {
                        let stages: Vec<_> = r
                            .stages()
                            .iter()
                            .map(|&s| {
                                let v = inst.catalog().get(s).unwrap();
                                (v.reliability(), v.compute())
                            })
                            .collect();
                        let rc = inst
                            .network()
                            .cloudlet(p.cloudlet)
                            .unwrap()
                            .reliability();
                        prop_assert!(
                            chain_availability(&stages, &p.replicas, rc) + 1e-9
                                >= r.reliability_requirement().value()
                        );
                    }
                }
            }
        }
    }
}
