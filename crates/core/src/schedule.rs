use std::fmt;

use mec_topology::CloudletId;
use mec_workload::{Request, RequestId};

/// Where an admitted request's VNF instances were placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// On-site: `instances` replicas (primary + backups) in one cloudlet.
    OnSite {
        /// The hosting cloudlet.
        cloudlet: CloudletId,
        /// Number of instances `N_ij ≥ 1`.
        instances: u32,
    },
    /// Off-site: exactly one instance in each listed cloudlet.
    OffSite {
        /// Distinct hosting cloudlets (at least one).
        cloudlets: Vec<CloudletId>,
    },
}

impl Placement {
    /// Total computing units consumed per active slot, given the per-
    /// instance demand `c(f_i)`.
    pub fn compute_per_slot(&self, per_instance: u64) -> u64 {
        match self {
            Placement::OnSite { instances, .. } => u64::from(*instances) * per_instance,
            Placement::OffSite { cloudlets } => cloudlets.len() as u64 * per_instance,
        }
    }

    /// Number of VNF instances in this placement.
    pub fn instance_count(&self) -> u32 {
        match self {
            Placement::OnSite { instances, .. } => *instances,
            Placement::OffSite { cloudlets } => cloudlets.len() as u32,
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::OnSite {
                cloudlet,
                instances,
            } => write!(f, "on-site {instances}× at {cloudlet}"),
            Placement::OffSite { cloudlets } => {
                write!(f, "off-site at ")?;
                for (i, c) in cloudlets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

/// The verdict an online scheduler returns for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Admit with the given placement; the payment is collected.
    Admit(Placement),
    /// Reject; no resources are consumed, no payment collected.
    Reject,
}

impl Decision {
    /// Whether this decision admits the request.
    pub fn is_admit(&self) -> bool {
        matches!(self, Decision::Admit(_))
    }

    /// The placement, if admitted.
    pub fn placement(&self) -> Option<&Placement> {
        match self {
            Decision::Admit(p) => Some(p),
            Decision::Reject => None,
        }
    }
}

/// The accumulated outcome of an online run: one decision per request, in
/// arrival order, plus revenue bookkeeping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    placements: Vec<Option<Placement>>,
    revenue: f64,
    admitted: usize,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the decision for the next request in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `request.id()` does not match the next dense position —
    /// the online model processes requests exactly once, in order.
    pub fn record(&mut self, request: &Request, decision: Decision) {
        assert_eq!(
            request.id().index(),
            self.placements.len(),
            "requests must be recorded densely in arrival order"
        );
        match decision {
            Decision::Admit(p) => {
                self.revenue += request.payment();
                self.admitted += 1;
                self.placements.push(Some(p));
            }
            Decision::Reject => self.placements.push(None),
        }
    }

    /// Placement of a request, `None` if rejected or unknown.
    pub fn placement(&self, id: RequestId) -> Option<&Placement> {
        self.placements.get(id.index()).and_then(|p| p.as_ref())
    }

    /// Whether the request was admitted.
    pub fn is_admitted(&self, id: RequestId) -> bool {
        self.placement(id).is_some()
    }

    /// Total revenue collected (Σ pay over admitted requests).
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// Number of admitted requests.
    pub fn admitted_count(&self) -> usize {
        self.admitted
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Whether no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Acceptance ratio (admitted / total), 0 for an empty schedule.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.placements.is_empty() {
            0.0
        } else {
            self.admitted as f64 / self.placements.len() as f64
        }
    }

    /// Iterates over `(RequestId, Option<&Placement>)` in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (RequestId, Option<&Placement>)> + '_ {
        self.placements
            .iter()
            .enumerate()
            .map(|(i, p)| (RequestId(i), p.as_ref()))
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule: {}/{} admitted, revenue {:.2}",
            self.admitted,
            self.placements.len(),
            self.revenue
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::Reliability;
    use mec_workload::{Horizon, VnfTypeId};

    fn request(id: usize, pay: f64) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(0),
            Reliability::new(0.9).unwrap(),
            0,
            1,
            pay,
            Horizon::new(4),
        )
        .unwrap()
    }

    #[test]
    fn placement_compute() {
        let on = Placement::OnSite {
            cloudlet: CloudletId(0),
            instances: 3,
        };
        assert_eq!(on.compute_per_slot(2), 6);
        assert_eq!(on.instance_count(), 3);
        let off = Placement::OffSite {
            cloudlets: vec![CloudletId(0), CloudletId(2)],
        };
        assert_eq!(off.compute_per_slot(2), 4);
        assert_eq!(off.instance_count(), 2);
        assert!(on.to_string().contains("on-site"));
        assert!(off.to_string().contains("c0,c2"));
    }

    #[test]
    fn schedule_accumulates_revenue() {
        let mut s = Schedule::new();
        s.record(
            &request(0, 5.0),
            Decision::Admit(Placement::OnSite {
                cloudlet: CloudletId(0),
                instances: 1,
            }),
        );
        s.record(&request(1, 3.0), Decision::Reject);
        s.record(
            &request(2, 2.0),
            Decision::Admit(Placement::OffSite {
                cloudlets: vec![CloudletId(0)],
            }),
        );
        assert_eq!(s.revenue(), 7.0);
        assert_eq!(s.admitted_count(), 2);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!((s.acceptance_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!(s.is_admitted(RequestId(0)));
        assert!(!s.is_admitted(RequestId(1)));
        assert!(s.placement(RequestId(2)).is_some());
        assert!(s.placement(RequestId(9)).is_none());
        assert_eq!(s.iter().count(), 3);
        assert!(s.to_string().contains("2/3"));
    }

    #[test]
    #[should_panic(expected = "densely in arrival order")]
    fn out_of_order_recording_panics() {
        let mut s = Schedule::new();
        s.record(&request(1, 1.0), Decision::Reject);
    }

    #[test]
    fn decision_helpers() {
        let d = Decision::Admit(Placement::OnSite {
            cloudlet: CloudletId(1),
            instances: 2,
        });
        assert!(d.is_admit());
        assert!(d.placement().is_some());
        assert!(!Decision::Reject.is_admit());
        assert!(Decision::Reject.placement().is_none());
    }
}
