use std::error::Error;
use std::fmt;

use lp_solver::SolverError;
use mec_topology::TopologyError;
use mec_workload::WorkloadError;

/// Errors produced by the reliability-aware VNF scheduling library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VnfrelError {
    /// The problem instance is unusable (no cloudlets, empty catalog, …).
    InvalidInstance(&'static str),
    /// A request referenced a VNF type missing from the catalog.
    Workload(WorkloadError),
    /// A network-model error.
    Topology(TopologyError),
    /// The offline ILP solver failed.
    Solver(SolverError),
    /// Request ids are not dense in arrival order (the online algorithms
    /// index per-request state by id).
    NonDenseRequestIds {
        /// Position in the request stream.
        position: usize,
        /// The id found there.
        found: usize,
    },
    /// A scheduling parameter was out of range.
    InvalidParameter(&'static str),
    /// A saved scheduler-state payload cannot be loaded into this
    /// scheduler: wrong grid shape, non-finite value, or a counter
    /// vector that does not match the scheduler's layout.
    StateRestore(&'static str),
    /// A capacity release would drive a ledger cell below zero — the
    /// amount was never charged (or was already released).
    ReleaseUnderflow {
        /// The cloudlet whose ledger cell would underflow.
        cloudlet: usize,
        /// The slot of the underflowing cell.
        slot: usize,
        /// Usage committed in that cell before the release.
        used: f64,
        /// The amount the caller tried to release.
        amount: f64,
    },
}

impl fmt::Display for VnfrelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VnfrelError::InvalidInstance(what) => write!(f, "invalid problem instance: {what}"),
            VnfrelError::Workload(e) => write!(f, "workload error: {e}"),
            VnfrelError::Topology(e) => write!(f, "topology error: {e}"),
            VnfrelError::Solver(e) => write!(f, "solver error: {e}"),
            VnfrelError::NonDenseRequestIds { position, found } => write!(
                f,
                "request ids must be dense in arrival order; position {position} holds id {found}"
            ),
            VnfrelError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            VnfrelError::StateRestore(what) => {
                write!(f, "scheduler state restore failed: {what}")
            }
            VnfrelError::ReleaseUnderflow {
                cloudlet,
                slot,
                used,
                amount,
            } => write!(
                f,
                "cannot release {amount} units from cloudlet {cloudlet} at slot {slot}: \
                 only {used} committed"
            ),
        }
    }
}

impl Error for VnfrelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VnfrelError::Workload(e) => Some(e),
            VnfrelError::Topology(e) => Some(e),
            VnfrelError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WorkloadError> for VnfrelError {
    fn from(e: WorkloadError) -> Self {
        VnfrelError::Workload(e)
    }
}

impl From<TopologyError> for VnfrelError {
    fn from(e: TopologyError) -> Self {
        VnfrelError::Topology(e)
    }
}

impl From<SolverError> for VnfrelError {
    fn from(e: SolverError) -> Self {
        VnfrelError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = VnfrelError::from(WorkloadError::ZeroDuration);
        assert!(e.to_string().contains("workload"));
        assert!(e.source().is_some());
        let e = VnfrelError::from(TopologyError::EmptyNetwork);
        assert!(e.source().is_some());
        let e = VnfrelError::from(SolverError::EmptyModel);
        assert!(e.source().is_some());
        let e = VnfrelError::InvalidInstance("no cloudlets");
        assert!(e.source().is_none());
        assert!(!e.to_string().is_empty());
        let e = VnfrelError::NonDenseRequestIds {
            position: 3,
            found: 7,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('7'));
    }
}
