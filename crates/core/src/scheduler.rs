use mec_workload::Request;

use crate::error::VnfrelError;
use crate::instance::Scheme;
use crate::ledger::CapacityLedger;
use crate::schedule::{Decision, Schedule};

/// Portable snapshot of an online scheduler's mutable state.
///
/// Everything a scheduler accumulates across `decide()` calls, flattened
/// into plain vectors so a serving daemon can persist it and later
/// rebuild a scheduler that continues the decision stream byte for byte
/// (see `mec-serve`). Construction-time state — the problem instance,
/// capacities, precomputed ladders — is *not* included; a restore
/// target must be built from the same instance first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerState {
    /// Committed-usage grid, row-major `used[cloudlet * slots + slot]`
    /// (see [`CapacityLedger::used_grid`]).
    pub used: Vec<f64>,
    /// Dual-price grid `λ`, row-major `lambda[cloudlet * slots + slot]`
    /// (see [`crate::DualPrices::values`]); empty for schedulers that
    /// keep no prices (the greedy baselines).
    pub lambda: Vec<f64>,
    /// Accumulated dual-objective increment `Σ δ_i`; `0` for schedulers
    /// that keep no dual objective.
    pub sum_delta: f64,
    /// Per-reason rejection counters in the scheduler's documented
    /// order; empty for schedulers that keep no counters.
    pub counters: Vec<u64>,
}

/// An online request-admission algorithm.
///
/// Implementations hold a reference to the
/// [`ProblemInstance`](crate::ProblemInstance) and mutable internal state
/// (dual variables, capacity ledger); the driver feeds requests one at a
/// time in arrival order, with no knowledge of future arrivals — the
/// online model of Section III-B.
pub trait OnlineScheduler {
    /// Short algorithm name for reports (e.g. `"alg1-primal-dual"`).
    fn name(&self) -> &'static str;

    /// Which backup scheme this scheduler implements.
    fn scheme(&self) -> Scheme;

    /// Decides admission for the next request and commits any resources.
    fn decide(&mut self, request: &Request) -> Decision;

    /// The scheduler's capacity ledger (for utilization/violation stats).
    fn ledger(&self) -> &CapacityLedger;

    /// Mutable access to the ledger, so a fault-aware driver can
    /// [`release`](CapacityLedger::release) capacity killed by outages
    /// and charge replacement placements during recovery.
    fn ledger_mut(&mut self) -> &mut CapacityLedger;

    /// Exports the scheduler's mutable state for persistence.
    ///
    /// The default covers ledger-only schedulers (the greedy baselines,
    /// whose ordering/scratch state is derived at construction): just
    /// the usage grid, no prices, no counters. The primal–dual
    /// schedulers override this to add `λ`, `Σ δ_i` and their rejection
    /// counters.
    fn export_state(&self) -> SchedulerState {
        SchedulerState {
            used: self.ledger().used_grid().to_vec(),
            lambda: Vec::new(),
            sum_delta: 0.0,
            counters: Vec::new(),
        }
    }

    /// Restores state previously produced by
    /// [`export_state`](OnlineScheduler::export_state) on a scheduler
    /// built from the same problem instance.
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::StateRestore`] when the payload does not
    /// fit this scheduler (wrong grid shape, prices for a price-free
    /// scheduler, counter-vector length mismatch) and leaves the
    /// scheduler unchanged in that case.
    fn import_state(&mut self, state: &SchedulerState) -> Result<(), VnfrelError> {
        if !state.lambda.is_empty() {
            return Err(VnfrelError::StateRestore(
                "this scheduler keeps no dual prices",
            ));
        }
        if !state.counters.is_empty() {
            return Err(VnfrelError::StateRestore(
                "this scheduler keeps no rejection counters",
            ));
        }
        self.ledger_mut().restore_used(&state.used)
    }
}

/// Feeds `requests` (already in arrival order) through a scheduler and
/// collects the resulting [`Schedule`].
///
/// # Errors
///
/// Returns [`VnfrelError::NonDenseRequestIds`] if ids are not dense in
/// arrival order.
pub fn run_online<S: OnlineScheduler + ?Sized>(
    scheduler: &mut S,
    requests: &[Request],
) -> Result<Schedule, VnfrelError> {
    let mut schedule = Schedule::new();
    for (i, r) in requests.iter().enumerate() {
        if r.id().index() != i {
            return Err(VnfrelError::NonDenseRequestIds {
                position: i,
                found: r.id().index(),
            });
        }
        let decision = scheduler.decide(r);
        schedule.record(r, decision);
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Placement;
    use mec_topology::{CloudletId, NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestId, VnfTypeId};

    /// Admits everything into cloudlet 0 — only for driver tests.
    struct AdmitAll {
        ledger: CapacityLedger,
    }

    impl OnlineScheduler for AdmitAll {
        fn name(&self) -> &'static str {
            "admit-all"
        }
        fn scheme(&self) -> Scheme {
            Scheme::OnSite
        }
        fn decide(&mut self, _request: &Request) -> Decision {
            Decision::Admit(Placement::OnSite {
                cloudlet: CloudletId(0),
                instances: 1,
            })
        }
        fn ledger(&self) -> &CapacityLedger {
            &self.ledger
        }
        fn ledger_mut(&mut self) -> &mut CapacityLedger {
            &mut self.ledger
        }
    }

    fn make() -> AdmitAll {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        b.add_cloudlet(a, 10, Reliability::new(0.99).unwrap())
            .unwrap();
        AdmitAll {
            ledger: CapacityLedger::new(&b.build().unwrap(), Horizon::new(4)),
        }
    }

    fn request(id: usize) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(0),
            Reliability::new(0.9).unwrap(),
            0,
            1,
            2.0,
            Horizon::new(4),
        )
        .unwrap()
    }

    #[test]
    fn run_online_collects_schedule() {
        let mut s = make();
        let reqs = vec![request(0), request(1)];
        let schedule = run_online(&mut s, &reqs).unwrap();
        assert_eq!(schedule.admitted_count(), 2);
        assert_eq!(schedule.revenue(), 4.0);
        assert_eq!(s.name(), "admit-all");
        assert_eq!(s.scheme(), Scheme::OnSite);
        assert_eq!(s.ledger().cloudlet_count(), 1);
    }

    #[test]
    fn run_online_rejects_non_dense_ids() {
        let mut s = make();
        let reqs = vec![request(5)];
        assert!(matches!(
            run_online(&mut s, &reqs),
            Err(VnfrelError::NonDenseRequestIds { .. })
        ));
    }
}
