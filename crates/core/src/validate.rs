//! Independent verification of a finished [`Schedule`] against the
//! problem's constraints — defense in depth for every scheduler: the
//! validator recomputes capacity usage and achieved reliability from
//! scratch, sharing no code path with the schedulers' own ledgers.

use std::fmt;

use mec_workload::{Request, RequestId};

use crate::error::VnfrelError;
use crate::instance::{ProblemInstance, Scheme};
use crate::ledger::CapacityLedger;
use crate::reliability::{offsite_availability, onsite_availability};
use crate::schedule::{Placement, Schedule};

/// A single constraint violation found by the validator.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An admitted request's achieved availability is below `R_i`.
    Reliability {
        /// The offending request.
        request: RequestId,
        /// Availability achieved by the recorded placement.
        achieved: f64,
        /// The request's requirement `R_i`.
        required: f64,
    },
    /// A (cloudlet, slot) pair is loaded beyond its capacity.
    Capacity {
        /// Cloudlet index.
        cloudlet: usize,
        /// Time slot.
        slot: usize,
        /// Committed load in computing units.
        used: f64,
        /// The cloudlet's capacity.
        capacity: f64,
    },
    /// A placement's shape contradicts the scheme (e.g. duplicate
    /// cloudlets in an off-site placement, or a placement kind that does
    /// not match the scheme being validated).
    Malformed {
        /// The offending request.
        request: RequestId,
        /// What is wrong.
        reason: &'static str,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Reliability {
                request,
                achieved,
                required,
            } => write!(
                f,
                "request {request}: achieved availability {achieved:.6} < required {required:.6}"
            ),
            Violation::Capacity {
                cloudlet,
                slot,
                used,
                capacity,
            } => write!(
                f,
                "cloudlet c{cloudlet} slot {slot}: load {used:.2} exceeds capacity {capacity:.2}"
            ),
            Violation::Malformed { request, reason } => {
                write!(f, "request {request}: malformed placement ({reason})")
            }
        }
    }
}

/// Validation report for a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// All violations found (empty = fully feasible).
    pub violations: Vec<Violation>,
    /// Revenue recomputed from the placements (cross-check against
    /// [`Schedule::revenue`]).
    pub recomputed_revenue: f64,
    /// Worst relative capacity overflow, 0.0 when none.
    pub max_overflow: f64,
}

impl ValidationReport {
    /// Whether the schedule satisfies every constraint.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of a reliability requirement only.
    pub fn reliability_violations(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| matches!(v, Violation::Reliability { .. }))
            .count()
    }

    /// Capacity violations only.
    pub fn capacity_violations(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| matches!(v, Violation::Capacity { .. }))
            .count()
    }
}

/// Validates `schedule` against the instance, workload, and scheme.
///
/// # Errors
///
/// Returns [`VnfrelError::InvalidParameter`] when the schedule does not
/// cover exactly the given requests, and propagates catalog lookups.
pub fn validate_schedule(
    instance: &ProblemInstance,
    requests: &[Request],
    schedule: &Schedule,
    scheme: Scheme,
) -> Result<ValidationReport, VnfrelError> {
    if schedule.len() != requests.len() {
        return Err(VnfrelError::InvalidParameter(
            "schedule length differs from request count",
        ));
    }
    let mut violations = Vec::new();
    let mut ledger = CapacityLedger::new(instance.network(), instance.horizon());
    let mut revenue = 0.0;

    for r in requests {
        let Some(placement) = schedule.placement(r.id()) else {
            continue;
        };
        revenue += r.payment();
        let vnf = instance.catalog().require(r.vnf())?;
        match (scheme, placement) {
            (
                Scheme::OnSite,
                Placement::OnSite {
                    cloudlet,
                    instances,
                },
            ) => {
                let Some(c) = instance.network().cloudlet(*cloudlet) else {
                    violations.push(Violation::Malformed {
                        request: r.id(),
                        reason: "unknown cloudlet",
                    });
                    continue;
                };
                if *instances == 0 {
                    violations.push(Violation::Malformed {
                        request: r.id(),
                        reason: "zero instances",
                    });
                    continue;
                }
                let achieved = onsite_availability(vnf.reliability(), c.reliability(), *instances);
                if achieved + 1e-9 < r.reliability_requirement().value() {
                    violations.push(Violation::Reliability {
                        request: r.id(),
                        achieved,
                        required: r.reliability_requirement().value(),
                    });
                }
                ledger.charge(
                    c.id(),
                    r.slots(),
                    f64::from(*instances) * vnf.compute() as f64,
                );
            }
            (Scheme::OffSite, Placement::OffSite { cloudlets }) => {
                if cloudlets.is_empty() {
                    violations.push(Violation::Malformed {
                        request: r.id(),
                        reason: "empty cloudlet set",
                    });
                    continue;
                }
                let mut sorted = cloudlets.clone();
                sorted.sort();
                sorted.dedup();
                if sorted.len() != cloudlets.len() {
                    violations.push(Violation::Malformed {
                        request: r.id(),
                        reason: "duplicate cloudlet (off-site allows one instance per cloudlet)",
                    });
                    continue;
                }
                let mut rels = Vec::with_capacity(cloudlets.len());
                let mut ok = true;
                for &cid in cloudlets {
                    match instance.network().cloudlet(cid) {
                        Some(c) => rels.push(c.reliability()),
                        None => {
                            violations.push(Violation::Malformed {
                                request: r.id(),
                                reason: "unknown cloudlet",
                            });
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let achieved = offsite_availability(vnf.reliability(), rels);
                if achieved + 1e-9 < r.reliability_requirement().value() {
                    violations.push(Violation::Reliability {
                        request: r.id(),
                        achieved,
                        required: r.reliability_requirement().value(),
                    });
                }
                for &cid in cloudlets {
                    ledger.charge(cid, r.slots(), vnf.compute() as f64);
                }
            }
            _ => violations.push(Violation::Malformed {
                request: r.id(),
                reason: "placement kind does not match the scheme",
            }),
        }
    }

    // Capacity sweep.
    for cloudlet in instance.network().cloudlets() {
        for t in instance.horizon().slots() {
            let used = ledger.used(cloudlet.id(), t);
            let cap = cloudlet.capacity() as f64;
            if used > cap + 1e-9 {
                violations.push(Violation::Capacity {
                    cloudlet: cloudlet.id().index(),
                    slot: t,
                    used,
                    capacity: cap,
                });
            }
        }
    }

    Ok(ValidationReport {
        violations,
        recomputed_revenue: revenue,
        max_overflow: ledger.max_overflow(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Decision;
    use mec_topology::{CloudletId, NetworkBuilder, Reliability};
    use mec_workload::{Horizon, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        b.add_link(a, c, 1.0).unwrap();
        b.add_cloudlet(a, 4, rel(0.999)).unwrap();
        b.add_cloudlet(c, 4, rel(0.95)).unwrap();
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(6)).unwrap()
    }

    fn request(id: usize, req: f64) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(1), // NAT: compute 1, r = 0.99
            rel(req),
            0,
            2,
            3.0,
            Horizon::new(6),
        )
        .unwrap()
    }

    #[test]
    fn feasible_onsite_schedule_passes() {
        let inst = instance();
        let reqs = vec![request(0, 0.9)];
        let mut s = Schedule::new();
        s.record(
            &reqs[0],
            Decision::Admit(Placement::OnSite {
                cloudlet: CloudletId(0),
                instances: 2,
            }),
        );
        let rep = validate_schedule(&inst, &reqs, &s, Scheme::OnSite).unwrap();
        assert!(rep.is_feasible(), "{:?}", rep.violations);
        assert_eq!(rep.recomputed_revenue, 3.0);
        assert_eq!(rep.max_overflow, 0.0);
    }

    #[test]
    fn detects_reliability_shortfall() {
        let inst = instance();
        // One NAT instance at cloudlet 1 (0.95): availability 0.9405 <
        // 0.97.
        let reqs = vec![request(0, 0.97)];
        let mut s = Schedule::new();
        s.record(
            &reqs[0],
            Decision::Admit(Placement::OnSite {
                cloudlet: CloudletId(1),
                instances: 1,
            }),
        );
        let rep = validate_schedule(&inst, &reqs, &s, Scheme::OnSite).unwrap();
        assert_eq!(rep.reliability_violations(), 1);
    }

    #[test]
    fn detects_capacity_overflow() {
        let inst = instance();
        let reqs: Vec<Request> = (0..3).map(|i| request(i, 0.9)).collect();
        let mut s = Schedule::new();
        for r in &reqs {
            // 3 requests × 2 instances × 1 unit = 6 > cap 4.
            s.record(
                r,
                Decision::Admit(Placement::OnSite {
                    cloudlet: CloudletId(0),
                    instances: 2,
                }),
            );
        }
        let rep = validate_schedule(&inst, &reqs, &s, Scheme::OnSite).unwrap();
        assert!(rep.capacity_violations() > 0);
        assert!(rep.max_overflow > 0.0);
    }

    #[test]
    fn detects_scheme_mismatch_and_duplicates() {
        let inst = instance();
        let reqs = vec![request(0, 0.9), request(1, 0.9)];
        let mut s = Schedule::new();
        s.record(
            &reqs[0],
            Decision::Admit(Placement::OnSite {
                cloudlet: CloudletId(0),
                instances: 1,
            }),
        );
        s.record(
            &reqs[1],
            Decision::Admit(Placement::OffSite {
                cloudlets: vec![CloudletId(0), CloudletId(0)],
            }),
        );
        let rep = validate_schedule(&inst, &reqs, &s, Scheme::OffSite).unwrap();
        // Request 0 has the wrong kind; request 1 has duplicates.
        assert_eq!(rep.violations.len(), 2);
        assert!(rep
            .violations
            .iter()
            .all(|v| matches!(v, Violation::Malformed { .. })));
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let inst = instance();
        let reqs = vec![request(0, 0.9)];
        let s = Schedule::new();
        assert!(validate_schedule(&inst, &reqs, &s, Scheme::OnSite).is_err());
    }

    #[test]
    fn violation_display() {
        let v = Violation::Reliability {
            request: RequestId(3),
            achieved: 0.9,
            required: 0.95,
        };
        assert!(v.to_string().contains("ρ3"));
        let v = Violation::Capacity {
            cloudlet: 1,
            slot: 4,
            used: 6.0,
            capacity: 4.0,
        };
        assert!(v.to_string().contains("c1"));
        let v = Violation::Malformed {
            request: RequestId(0),
            reason: "x",
        };
        assert!(!v.to_string().is_empty());
    }
}
