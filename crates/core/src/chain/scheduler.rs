use std::fmt;

use mec_topology::CloudletId;

use crate::chain::alloc::{allocate_replicas, ChainAllocation};
use crate::chain::request::{ChainRequest, ChainRequestId};
use crate::error::VnfrelError;
use crate::instance::ProblemInstance;
use crate::ledger::CapacityLedger;

/// Where an admitted chain landed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainPlacement {
    /// Hosting cloudlet (on-site: the whole chain shares it).
    pub cloudlet: CloudletId,
    /// Replicas per stage.
    pub replicas: Vec<u32>,
    /// Total computing units consumed per active slot.
    pub total_compute: u64,
}

/// Decisions for a stream of chain requests, in arrival order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChainSchedule {
    placements: Vec<Option<ChainPlacement>>,
    revenue: f64,
}

impl ChainSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&mut self, request: &ChainRequest, placement: Option<ChainPlacement>) {
        assert_eq!(
            request.id().index(),
            self.placements.len(),
            "chain requests must be recorded densely in arrival order"
        );
        if placement.is_some() {
            self.revenue += request.payment();
        }
        self.placements.push(placement);
    }

    /// Placement of a chain, `None` if rejected.
    pub fn placement(&self, id: ChainRequestId) -> Option<&ChainPlacement> {
        self.placements.get(id.index()).and_then(|p| p.as_ref())
    }

    /// Total revenue collected.
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// Number of admitted chains.
    pub fn admitted_count(&self) -> usize {
        self.placements.iter().filter(|p| p.is_some()).count()
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Whether no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }
}

impl fmt::Display for ChainSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chain schedule: {}/{} admitted, revenue {:.2}",
            self.admitted_count(),
            self.len(),
            self.revenue
        )
    }
}

/// An online scheduler for chain requests (on-site scheme).
pub trait ChainScheduler {
    /// Decides admission for the next chain request.
    fn decide(&mut self, request: &ChainRequest) -> Option<ChainPlacement>;
}

/// Feeds chain requests through a scheduler.
///
/// # Errors
///
/// Returns [`VnfrelError::NonDenseRequestIds`] if ids are not dense in
/// arrival order.
pub fn run_chain_online<S: ChainScheduler + ?Sized>(
    scheduler: &mut S,
    requests: &[ChainRequest],
) -> Result<ChainSchedule, VnfrelError> {
    let mut schedule = ChainSchedule::new();
    for (i, r) in requests.iter().enumerate() {
        if r.id().index() != i {
            return Err(VnfrelError::NonDenseRequestIds {
                position: i,
                found: r.id().index(),
            });
        }
        let placement = scheduler.decide(r);
        schedule.record(r, placement);
    }
    Ok(schedule)
}

/// Helper: resolve a chain's stage parameters against the catalog.
fn stage_params(
    instance: &ProblemInstance,
    request: &ChainRequest,
) -> Option<Vec<(mec_topology::Reliability, u64)>> {
    request
        .stages()
        .iter()
        .map(|&s| {
            instance
                .catalog()
                .get(s)
                .map(|v| (v.reliability(), v.compute()))
        })
        .collect()
}

/// Algorithm 1 generalized to chains: the per-cloudlet weight `a_ij`
/// becomes the minimum total compute of a feasible replica allocation
/// ([`allocate_replicas`]); admission and price updates are otherwise
/// identical to [`OnsitePrimalDual`](crate::onsite::OnsitePrimalDual).
#[derive(Debug)]
pub struct ChainPrimalDual<'a> {
    instance: &'a ProblemInstance,
    /// λ[cloudlet][slot]
    lambda: Vec<Vec<f64>>,
    ledger: CapacityLedger,
}

impl<'a> ChainPrimalDual<'a> {
    /// Creates the scheduler with zero prices.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        ChainPrimalDual {
            instance,
            lambda: vec![vec![0.0; instance.horizon().len()]; instance.cloudlet_count()],
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
        }
    }

    /// The scheduler's capacity ledger.
    pub fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }
}

impl ChainScheduler for ChainPrimalDual<'_> {
    fn decide(&mut self, request: &ChainRequest) -> Option<ChainPlacement> {
        let stages = stage_params(self.instance, request)?;
        let mut best: Option<(usize, ChainAllocation, f64)> = None;
        for cloudlet in self.instance.network().cloudlets() {
            let j = cloudlet.id().index();
            let Some(alloc) = allocate_replicas(
                &stages,
                cloudlet.reliability(),
                request.reliability_requirement(),
            ) else {
                continue;
            };
            let weight = alloc.total_compute as f64;
            if !self.ledger.fits(cloudlet.id(), request.slots(), weight) {
                continue;
            }
            let cost: f64 = request.slots().map(|t| weight * self.lambda[j][t]).sum();
            match &best {
                Some((_, _, c)) if *c <= cost => {}
                _ => best = Some((j, alloc, cost)),
            }
        }
        let (j, alloc, cost) = best?;
        if request.payment() - cost <= 0.0 {
            return None;
        }
        let weight = alloc.total_compute as f64;
        self.ledger.charge(CloudletId(j), request.slots(), weight);
        let cap = self.ledger.capacity(CloudletId(j));
        let d = request.duration() as f64;
        for t in request.slots() {
            let l = self.lambda[j][t];
            self.lambda[j][t] = l * (1.0 + weight / cap) + weight * request.payment() / (d * cap);
        }
        Some(ChainPlacement {
            cloudlet: CloudletId(j),
            replicas: alloc.replicas,
            total_compute: alloc.total_compute,
        })
    }
}

/// Greedy chain baseline: most reliable cloudlet first (lowest replica
/// cost), ignoring payments.
#[derive(Debug)]
pub struct ChainGreedy<'a> {
    instance: &'a ProblemInstance,
    order: Vec<CloudletId>,
    ledger: CapacityLedger,
}

impl<'a> ChainGreedy<'a> {
    /// Creates the greedy chain scheduler.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        let mut order: Vec<CloudletId> = instance.network().cloudlets().map(|c| c.id()).collect();
        order.sort_by(|&a, &b| {
            let ra = instance
                .network()
                .cloudlet(a)
                .expect("valid id")
                .reliability();
            let rb = instance
                .network()
                .cloudlet(b)
                .expect("valid id")
                .reliability();
            rb.cmp(&ra).then(a.index().cmp(&b.index()))
        });
        ChainGreedy {
            instance,
            order,
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
        }
    }

    /// The scheduler's capacity ledger.
    pub fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }
}

impl ChainScheduler for ChainGreedy<'_> {
    fn decide(&mut self, request: &ChainRequest) -> Option<ChainPlacement> {
        let stages = stage_params(self.instance, request)?;
        for &cid in &self.order {
            let cloudlet = self.instance.network().cloudlet(cid).expect("valid id");
            let Some(alloc) = allocate_replicas(
                &stages,
                cloudlet.reliability(),
                request.reliability_requirement(),
            ) else {
                break; // sorted by reliability: later ones fail too
            };
            let weight = alloc.total_compute as f64;
            if self.ledger.fits(cid, request.slots(), weight) {
                self.ledger.charge(cid, request.slots(), weight);
                return Some(ChainPlacement {
                    cloudlet: cid,
                    replicas: alloc.replicas,
                    total_compute: alloc.total_compute,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::alloc::chain_availability;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn instance(cloudlets: &[(u64, f64)]) -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, &(cap, r)) in cloudlets.iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, cap, rel(r)).unwrap();
        }
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(10)).unwrap()
    }

    fn chain(id: usize, stages: Vec<usize>, req: f64, pay: f64) -> ChainRequest {
        ChainRequest::new(
            ChainRequestId(id),
            stages.into_iter().map(VnfTypeId).collect(),
            rel(req),
            0,
            2,
            pay,
            Horizon::new(10),
        )
        .unwrap()
    }

    #[test]
    fn primal_dual_admits_and_meets_reliability() {
        let inst = instance(&[(40, 0.9999), (40, 0.999)]);
        let mut alg = ChainPrimalDual::new(&inst);
        let c = chain(0, vec![0, 1, 3], 0.97, 25.0);
        let p = alg.decide(&c).expect("admitted");
        assert_eq!(p.replicas.len(), 3);
        // Recompute availability independently.
        let stages: Vec<_> = c
            .stages()
            .iter()
            .map(|&s| {
                let v = inst.catalog().get(s).unwrap();
                (v.reliability(), v.compute())
            })
            .collect();
        let rc = inst.network().cloudlet(p.cloudlet).unwrap().reliability();
        assert!(chain_availability(&stages, &p.replicas, rc) >= 0.97);
    }

    #[test]
    fn rejects_when_no_cloudlet_reliable_enough() {
        let inst = instance(&[(40, 0.95)]);
        let mut alg = ChainPrimalDual::new(&inst);
        assert!(alg.decide(&chain(0, vec![0, 1], 0.96, 100.0)).is_none());
    }

    #[test]
    fn prices_block_low_payers_eventually() {
        let inst = instance(&[(12, 0.9999)]);
        let mut alg = ChainPrimalDual::new(&inst);
        let mut admitted = 0;
        let mut rejected = 0;
        for i in 0..40 {
            match alg.decide(&chain(i, vec![1, 5], 0.9, 6.0)) {
                Some(_) => admitted += 1,
                None => rejected += 1,
            }
        }
        assert!(admitted > 0 && rejected > 0, "{admitted}/{rejected}");
        assert_eq!(alg.ledger().max_overflow(), 0.0);
    }

    #[test]
    fn greedy_prefers_reliable_cloudlet_and_respects_capacity() {
        let inst = instance(&[(20, 0.99), (20, 0.9999)]);
        let mut g = ChainGreedy::new(&inst);
        let p = g.decide(&chain(0, vec![1, 8], 0.9, 1.0)).unwrap();
        assert_eq!(p.cloudlet, CloudletId(1));
        // Saturate: capacity never violated.
        for i in 1..60 {
            g.decide(&chain(i, vec![1, 8], 0.9, 1.0));
        }
        assert_eq!(g.ledger().max_overflow(), 0.0);
    }

    #[test]
    fn run_chain_online_collects_schedule() {
        let inst = instance(&[(30, 0.9999)]);
        let mut alg = ChainPrimalDual::new(&inst);
        let reqs: Vec<ChainRequest> = (0..10)
            .map(|i| chain(i, vec![i % 10, (i + 3) % 10], 0.9, 9.0))
            .collect();
        let s = run_chain_online(&mut alg, &reqs).unwrap();
        assert_eq!(s.len(), 10);
        assert!(s.admitted_count() > 0);
        assert!(s.revenue() > 0.0);
        assert!(!s.is_empty());
        assert!(s.to_string().contains("admitted"));
        // Non-dense ids rejected.
        let bad = vec![chain(5, vec![0], 0.9, 1.0)];
        assert!(run_chain_online(&mut ChainGreedy::new(&inst), &bad).is_err());
    }

    #[test]
    fn chain_primal_dual_beats_chain_greedy_under_scarcity() {
        let inst = instance(&[(10, 0.9999), (10, 0.999)]);
        let mut alg = ChainPrimalDual::new(&inst);
        let mut grd = ChainGreedy::new(&inst);
        // Heterogeneous payments; scarcity after a handful of chains.
        let reqs: Vec<ChainRequest> = (0..80)
            .map(|i| {
                let pay = if i % 4 == 0 { 40.0 } else { 2.0 };
                chain(i, vec![1, 8], 0.9, pay)
            })
            .collect();
        let sa = run_chain_online(&mut alg, &reqs).unwrap();
        let sg = run_chain_online(&mut grd, &reqs).unwrap();
        assert!(
            sa.revenue() > sg.revenue(),
            "primal-dual {} vs greedy {}",
            sa.revenue(),
            sg.revenue()
        );
    }
}
