//! Minimum-compute replica allocation for an on-site chain.
//!
//! Given chain stages `(r(f_k), c(f_k))`, a hosting cloudlet `r(c_j)`,
//! and an end-to-end target `R`, find integers `n_k ≥ 1` minimizing total
//! compute `Σ n_k·c(f_k)` subject to
//! `r(c_j) · Π_k (1 − (1 − r(f_k))^{n_k}) ≥ R`.
//!
//! This generalizes the single-VNF closed form `N_ij` (Eq. 3) — for
//! `K = 1` the two agree. The solver is an exact dynamic program over the
//! (integral) compute budget: per-stage replica options contribute
//! log-availability "gain", and `dp[cost]` tracks the best achievable
//! total gain; the answer is the smallest cost whose gain meets
//! `ln(R / r(c_j))`. Stage replica counts are capped at the point where a
//! stage's availability already exceeds the whole-chain target (more can
//! never help), keeping the DP small.

use mec_topology::Reliability;

/// An optimal replica vector for a chain at one cloudlet.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainAllocation {
    /// Replicas per stage, `n_k ≥ 1`, in stage order.
    pub replicas: Vec<u32>,
    /// Total computing units per active slot, `Σ n_k · c(f_k)`.
    pub total_compute: u64,
    /// Achieved end-to-end availability (including the cloudlet factor).
    pub availability: f64,
}

/// Availability of one stage with `n` replicas: `1 − (1 − r)^n`.
fn stage_availability(r: Reliability, n: u32) -> f64 {
    1.0 - r.failure().powi(n as i32)
}

/// End-to-end availability of a replica vector at a cloudlet.
pub fn chain_availability(
    stages: &[(Reliability, u64)],
    replicas: &[u32],
    cloudlet: Reliability,
) -> f64 {
    let product: f64 = stages
        .iter()
        .zip(replicas)
        .map(|(&(r, _), &n)| stage_availability(r, n))
        .product();
    cloudlet.value() * product
}

/// Finds the minimum-compute replica vector (see module docs).
///
/// Returns `None` when `r(c_j) ≤ R` (the cloudlet gates the chain, so no
/// replica count suffices) or when `stages` is empty.
pub fn allocate_replicas(
    stages: &[(Reliability, u64)],
    cloudlet: Reliability,
    req: Reliability,
) -> Option<ChainAllocation> {
    if stages.is_empty() || cloudlet.value() <= req.value() {
        return None;
    }
    // Per-stage target in log space: Σ ln(stage availability) ≥ ln(R/r_c).
    let ln_target = (req.value() / cloudlet.value()).ln(); // < 0

    // Enumerate per-stage options (n, cost, gain). Every stage must in
    // fact reach at least the end-to-end target on its own (the other
    // factors are < 1), and may need to go beyond it to compensate for
    // weaker stages — so options run until the stage's availability
    // saturates numerically (additional replicas cannot change the
    // product any more).
    let mut options: Vec<Vec<(u32, u64, f64)>> = Vec::with_capacity(stages.len());
    for &(r, c) in stages {
        let mut opts = Vec::new();
        let mut n = 1u32;
        loop {
            let avail = stage_availability(r, n);
            opts.push((n, u64::from(n) * c, avail.ln()));
            if 1.0 - avail < 1e-13 || n >= 80 {
                break;
            }
            n += 1;
        }
        options.push(opts);
    }

    // DP over integral compute cost.
    let max_cost: u64 = options
        .iter()
        .map(|o| o.last().expect("at least one option").1)
        .sum();
    let width = max_cost as usize + 1;
    const NEG: f64 = f64::NEG_INFINITY;
    // dp[cost] = (best total gain, chosen option index per processed stage
    // is reconstructed via parent tracking).
    let mut dp = vec![NEG; width];
    dp[0] = 0.0;
    // choice[k][cost] = option index used at stage k to reach `cost`.
    let mut choice: Vec<Vec<u32>> = Vec::with_capacity(options.len());
    for opts in &options {
        let mut next = vec![NEG; width];
        let mut pick = vec![u32::MAX; width];
        for (cost, &gain) in dp.iter().enumerate() {
            if gain == NEG {
                continue;
            }
            for (oi, &(_, c, g)) in opts.iter().enumerate() {
                let nc = cost + c as usize;
                if nc < width && gain + g > next[nc] {
                    next[nc] = gain + g;
                    pick[nc] = oi as u32;
                }
            }
        }
        dp = next;
        choice.push(pick);
    }

    // Smallest cost meeting the target (with a tolerance for the
    // log-space arithmetic).
    let best_cost = (0..width).find(|&c| dp[c] >= ln_target - 1e-12)?;

    // Reconstruct replica counts; mutable because the log-space DP can
    // land a hair short of the true product due to floating-point, in
    // which case the cheapest stage is nudged below.
    let mut replicas = vec![0u32; stages.len()];
    let mut cost = best_cost;
    for k in (0..stages.len()).rev() {
        let oi = choice[k][cost] as usize;
        let (n, c, _) = options[k][oi];
        replicas[k] = n;
        cost -= c as usize;
    }
    debug_assert_eq!(cost, 0);

    let availability = chain_availability(stages, &replicas, cloudlet);
    while chain_availability(stages, &replicas, cloudlet) < req.value() {
        let k = (0..stages.len())
            .min_by_key(|&k| stages[k].1)
            .expect("non-empty");
        replicas[k] += 1;
        if replicas[k] > 128 {
            return None; // defensive: cannot happen for valid inputs
        }
    }
    let availability = availability.max(chain_availability(stages, &replicas, cloudlet));
    let total_compute = stages
        .iter()
        .zip(&replicas)
        .map(|(&(_, c), &n)| u64::from(n) * c)
        .sum();
    Some(ChainAllocation {
        replicas,
        total_compute,
        availability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::onsite_instances;

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn single_stage_matches_closed_form() {
        for (rf, rc, rq) in [
            (0.9, 0.999, 0.99),
            (0.95, 0.9999, 0.995),
            (0.99, 0.999, 0.9),
            (0.9, 0.9999, 0.9995),
        ] {
            let stages = [(rel(rf), 2u64)];
            let alloc = allocate_replicas(&stages, rel(rc), rel(rq)).unwrap();
            let n = onsite_instances(rel(rf), rel(rc), rel(rq)).unwrap();
            assert_eq!(alloc.replicas, vec![n], "rf={rf} rc={rc} rq={rq}");
            assert_eq!(alloc.total_compute, u64::from(n) * 2);
            assert!(alloc.availability >= rq);
        }
    }

    #[test]
    fn infeasible_when_cloudlet_gates() {
        let stages = [(rel(0.9), 1u64), (rel(0.95), 2)];
        assert!(allocate_replicas(&stages, rel(0.95), rel(0.95)).is_none());
        assert!(allocate_replicas(&stages, rel(0.9), rel(0.95)).is_none());
        assert!(allocate_replicas(&[], rel(0.999), rel(0.9)).is_none());
    }

    #[test]
    fn allocation_is_feasible_and_each_stage_has_at_least_one() {
        let stages = [(rel(0.9), 3u64), (rel(0.99), 1), (rel(0.95), 2)];
        let alloc = allocate_replicas(&stages, rel(0.9999), rel(0.99)).unwrap();
        assert_eq!(alloc.replicas.len(), 3);
        assert!(alloc.replicas.iter().all(|&n| n >= 1));
        assert!(alloc.availability >= 0.99);
        assert!(
            chain_availability(&stages, &alloc.replicas, rel(0.9999)) >= 0.99,
            "reported availability must be real"
        );
    }

    #[test]
    fn dp_is_exact_vs_brute_force() {
        // Exhaustive search over n_k ∈ 1..=6 on small chains.
        let cases = [
            (
                vec![(rel(0.9), 1u64), (rel(0.92), 2)],
                rel(0.999),
                rel(0.97),
            ),
            (
                vec![(rel(0.95), 3u64), (rel(0.9), 1)],
                rel(0.9999),
                rel(0.99),
            ),
            (
                vec![(rel(0.9), 2u64), (rel(0.9), 2), (rel(0.99), 1)],
                rel(0.999),
                rel(0.95),
            ),
        ];
        for (stages, rc, rq) in cases {
            let alloc = allocate_replicas(&stages, rc, rq).unwrap();
            // Brute force.
            let k = stages.len();
            let mut best: Option<u64> = None;
            let mut idx = vec![1u32; k];
            'outer: loop {
                let cost: u64 = stages
                    .iter()
                    .zip(&idx)
                    .map(|(&(_, c), &n)| u64::from(n) * c)
                    .sum();
                if chain_availability(&stages, &idx, rc) >= rq.value() {
                    best = Some(best.map_or(cost, |b: u64| b.min(cost)));
                }
                // Increment the counter vector.
                for digit in idx.iter_mut() {
                    *digit += 1;
                    if *digit <= 6 {
                        continue 'outer;
                    }
                    *digit = 1;
                }
                break;
            }
            let brute = best.expect("feasible within bound");
            assert_eq!(
                alloc.total_compute, brute,
                "dp {} vs brute {} for {:?}",
                alloc.total_compute, brute, stages
            );
        }
    }

    #[test]
    fn harder_requirements_cost_more() {
        let stages = [(rel(0.9), 2u64), (rel(0.95), 1)];
        let cheap = allocate_replicas(&stages, rel(0.9999), rel(0.9)).unwrap();
        let pricey = allocate_replicas(&stages, rel(0.9999), rel(0.999)).unwrap();
        assert!(pricey.total_compute > cheap.total_compute);
    }

    #[test]
    fn longer_chains_cost_more() {
        let short = [(rel(0.9), 2u64)];
        let long = [(rel(0.9), 2u64), (rel(0.9), 2), (rel(0.9), 2)];
        let a = allocate_replicas(&short, rel(0.999), rel(0.98)).unwrap();
        let b = allocate_replicas(&long, rel(0.999), rel(0.98)).unwrap();
        assert!(b.total_compute > a.total_compute);
    }
}
