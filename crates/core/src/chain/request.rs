use std::fmt;

use mec_topology::Reliability;
use mec_workload::{Horizon, TimeSlot, VnfTypeId, WorkloadError};

/// Identifier of a chain request, dense in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChainRequestId(pub usize);

impl ChainRequestId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ChainRequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// A service-function-chain request: an ordered sequence of VNF types
/// with one end-to-end reliability requirement.
///
/// The chain is up only when *every* stage has at least one live
/// instance, so each stage's availability multiplies into the end-to-end
/// figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRequest {
    id: ChainRequestId,
    stages: Vec<VnfTypeId>,
    reliability_req: Reliability,
    arrival: TimeSlot,
    duration: usize,
    payment: f64,
}

impl ChainRequest {
    /// Creates a chain request after validating every field.
    ///
    /// # Errors
    ///
    /// * [`WorkloadError::InvalidParameter`] for an empty chain.
    /// * [`WorkloadError::ZeroDuration`] / [`WorkloadError::InvalidPayment`]
    ///   / [`WorkloadError::WindowOutsideHorizon`] as for plain requests.
    pub fn new(
        id: ChainRequestId,
        stages: Vec<VnfTypeId>,
        reliability_req: Reliability,
        arrival: TimeSlot,
        duration: usize,
        payment: f64,
        horizon: Horizon,
    ) -> Result<Self, WorkloadError> {
        if stages.is_empty() {
            return Err(WorkloadError::InvalidParameter("empty chain"));
        }
        if duration == 0 {
            return Err(WorkloadError::ZeroDuration);
        }
        if !payment.is_finite() || payment <= 0.0 {
            return Err(WorkloadError::InvalidPayment(payment));
        }
        if !horizon.contains_window(arrival, duration) {
            return Err(WorkloadError::WindowOutsideHorizon {
                arrival,
                duration,
                horizon: horizon.len(),
            });
        }
        Ok(ChainRequest {
            id,
            stages,
            reliability_req,
            arrival,
            duration,
            payment,
        })
    }

    /// Dense identifier (arrival order).
    pub fn id(&self) -> ChainRequestId {
        self.id
    }

    /// The VNF stages, in traversal order.
    pub fn stages(&self) -> &[VnfTypeId] {
        &self.stages
    }

    /// Chain length `K`.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Chains are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// End-to-end reliability requirement `R_i`.
    pub fn reliability_requirement(&self) -> Reliability {
        self.reliability_req
    }

    /// Arrival slot.
    pub fn arrival(&self) -> TimeSlot {
        self.arrival
    }

    /// Execution duration in slots.
    pub fn duration(&self) -> usize {
        self.duration
    }

    /// Last slot of the execution window.
    pub fn end_slot(&self) -> TimeSlot {
        self.arrival + self.duration - 1
    }

    /// The execution slots, in order.
    pub fn slots(&self) -> std::ops::RangeInclusive<TimeSlot> {
        self.arrival..=self.end_slot()
    }

    /// Payment collected if admitted.
    pub fn payment(&self) -> f64 {
        self.payment
    }
}

impl fmt::Display for ChainRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.id)?;
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{s}")?;
        }
        write!(
            f,
            "] R={} t=[{}..={}] pay={}",
            self.reliability_req,
            self.arrival,
            self.end_slot(),
            self.payment
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let c = ChainRequest::new(
            ChainRequestId(0),
            vec![VnfTypeId(0), VnfTypeId(3), VnfTypeId(1)],
            rel(0.9),
            2,
            3,
            12.0,
            Horizon::new(10),
        )
        .unwrap();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.end_slot(), 4);
        assert_eq!(c.slots().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(c.stages()[1], VnfTypeId(3));
        let s = c.to_string();
        assert!(s.contains("f0→f3→f1"), "{s}");
    }

    #[test]
    fn validation() {
        let h = Horizon::new(5);
        assert!(matches!(
            ChainRequest::new(ChainRequestId(0), vec![], rel(0.9), 0, 1, 1.0, h),
            Err(WorkloadError::InvalidParameter(_))
        ));
        assert!(matches!(
            ChainRequest::new(
                ChainRequestId(0),
                vec![VnfTypeId(0)],
                rel(0.9),
                0,
                0,
                1.0,
                h
            ),
            Err(WorkloadError::ZeroDuration)
        ));
        assert!(matches!(
            ChainRequest::new(
                ChainRequestId(0),
                vec![VnfTypeId(0)],
                rel(0.9),
                0,
                1,
                -1.0,
                h
            ),
            Err(WorkloadError::InvalidPayment(_))
        ));
        assert!(matches!(
            ChainRequest::new(
                ChainRequestId(0),
                vec![VnfTypeId(0)],
                rel(0.9),
                4,
                3,
                1.0,
                h
            ),
            Err(WorkloadError::WindowOutsideHorizon { .. })
        ));
    }
}
