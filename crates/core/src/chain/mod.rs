//! Service Function Chain (SFC) extension.
//!
//! The paper schedules single-VNF requests; its related work (Ding et
//! al. \[7\], Hmaity et al. \[13\]) studies *chains* — an ordered sequence of
//! VNFs that must all be operational for the service to work. This module
//! extends the on-site scheme to chains:
//!
//! * a [`ChainRequest`] asks for a sequence of VNF types with one
//!   end-to-end reliability requirement `R_i`,
//! * under the on-site scheme every replica of every stage lives in one
//!   cloudlet, so the chain availability is
//!   `r(c_j) · Π_k (1 − (1 − r(f_k))^{n_k})` — the product of per-stage
//!   survival probabilities, gated by the cloudlet,
//! * [`alloc::allocate_replicas`] finds a minimum-compute replica vector
//!   `(n_1, …, n_K)` meeting the target (greedy marginal-gain per
//!   computing unit, exact on small instances — see its docs),
//! * [`ChainPrimalDual`] and [`ChainGreedy`] port Algorithm 1 and the
//!   greedy baseline to chain requests.

pub mod alloc;
mod request;
mod scheduler;

pub use request::{ChainRequest, ChainRequestId};
pub use scheduler::{run_chain_online, ChainGreedy, ChainPrimalDual, ChainSchedule};
