use std::fmt;

use mec_topology::CloudletId;
use mec_topology::Network;
use mec_workload::{Horizon, TimeSlot};

/// Per-cloudlet, per-slot accounting of committed computing capacity.
///
/// Stored as `f64` so the scaling ablation (which inflates demands by a
/// non-integer factor, after Fan & Ansari) can charge fractional amounts.
/// The ledger supports deliberate over-commitment: the *raw* Algorithm 1
/// may violate capacity by a bounded amount (Lemma 8), and
/// [`CapacityLedger::max_overflow`] reports the worst violation observed.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityLedger {
    caps: Vec<f64>,
    /// Row-major residual grid: `used[cloudlet * slots + slot]`. One
    /// contiguous buffer keeps the per-request window scans of the hot
    /// scheduling path on a single cache line per cloudlet.
    used: Vec<f64>,
    slots: usize,
    horizon: Horizon,
}

impl CapacityLedger {
    /// Creates a ledger covering every cloudlet of `network` over `horizon`.
    pub fn new(network: &Network, horizon: Horizon) -> Self {
        let caps: Vec<f64> = network.cloudlets().map(|c| c.capacity() as f64).collect();
        let slots = horizon.len();
        let used = vec![0.0; slots * caps.len()];
        CapacityLedger {
            caps,
            used,
            slots,
            horizon,
        }
    }

    /// Capacity `cap_j` of a cloudlet.
    ///
    /// # Panics
    ///
    /// Panics if `cloudlet` is out of range.
    #[inline]
    pub fn capacity(&self, cloudlet: CloudletId) -> f64 {
        self.caps[cloudlet.index()]
    }

    /// Committed usage of a cloudlet in a slot.
    ///
    /// # Panics
    ///
    /// Panics if `cloudlet` or `slot` is out of range.
    #[inline]
    pub fn used(&self, cloudlet: CloudletId, slot: TimeSlot) -> f64 {
        self.used[cloudlet.index() * self.slots + slot]
    }

    /// Remaining capacity of a cloudlet in a slot (may be negative after
    /// deliberate over-commitment).
    #[inline]
    pub fn residual(&self, cloudlet: CloudletId, slot: TimeSlot) -> f64 {
        self.caps[cloudlet.index()] - self.used[cloudlet.index() * self.slots + slot]
    }

    /// Whether `amount` units fit in every slot of `slots` without
    /// exceeding capacity.
    #[inline]
    pub fn fits<I>(&self, cloudlet: CloudletId, slots: I, amount: f64) -> bool
    where
        I: IntoIterator<Item = TimeSlot>,
    {
        slots
            .into_iter()
            .all(|t| self.residual(cloudlet, t) + 1e-9 >= amount)
    }

    /// [`CapacityLedger::fits`] over the inclusive window
    /// `[first, last]`, as a branch-light scan of the contiguous row —
    /// the form the schedulers use on every (request, cloudlet) pair.
    #[inline]
    pub fn fits_window(
        &self,
        cloudlet: CloudletId,
        first: TimeSlot,
        last: TimeSlot,
        amount: f64,
    ) -> bool {
        let cap = self.caps[cloudlet.index()];
        let base = cloudlet.index() * self.slots;
        self.used[base + first..=base + last]
            .iter()
            .all(|&u| cap - u + 1e-9 >= amount)
    }

    /// Commits `amount` units in every slot of `slots`, allowing
    /// over-commitment (callers that must not overflow check
    /// [`CapacityLedger::fits`] first).
    #[inline]
    pub fn charge<I>(&mut self, cloudlet: CloudletId, slots: I, amount: f64)
    where
        I: IntoIterator<Item = TimeSlot>,
    {
        let base = cloudlet.index() * self.slots;
        for t in slots {
            self.used[base + t] += amount;
        }
    }

    /// [`CapacityLedger::charge`] over the inclusive window
    /// `[first, last]` on the contiguous row.
    #[inline]
    pub fn charge_window(
        &mut self,
        cloudlet: CloudletId,
        first: TimeSlot,
        last: TimeSlot,
        amount: f64,
    ) {
        let base = cloudlet.index() * self.slots;
        for u in &mut self.used[base + first..=base + last] {
            *u += amount;
        }
    }

    /// Returns `amount` units in every slot of `slots` — the inverse of
    /// [`CapacityLedger::charge`], used when a placement dies (cloudlet
    /// outage, instance kill) or is torn down for re-placement.
    ///
    /// The whole release is validated before any cell is mutated: on
    /// error the ledger is unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::ReleaseUnderflow`] when any touched cell
    /// holds less than `amount` (within a `1e-9` tolerance) — i.e. the
    /// caller is releasing capacity that was never charged.
    pub fn release<I>(
        &mut self,
        cloudlet: CloudletId,
        slots: I,
        amount: f64,
    ) -> Result<(), crate::VnfrelError>
    where
        I: IntoIterator<Item = TimeSlot> + Clone,
    {
        let row =
            &mut self.used[cloudlet.index() * self.slots..(cloudlet.index() + 1) * self.slots];
        for t in slots.clone() {
            if row[t] + 1e-9 < amount {
                return Err(crate::VnfrelError::ReleaseUnderflow {
                    cloudlet: cloudlet.index(),
                    slot: t,
                    used: row[t],
                    amount,
                });
            }
        }
        for t in slots {
            // Clamp at zero so a full release of the last charge cannot
            // leave a −1e-16 residue from float rounding.
            row[t] = (row[t] - amount).max(0.0);
        }
        Ok(())
    }

    /// The committed-usage grid in row-major
    /// `used[cloudlet * slots + slot]` order — the complete mutable
    /// state of the ledger. Used by snapshot/restore in `mec-serve`.
    #[inline]
    pub fn used_grid(&self) -> &[f64] {
        &self.used
    }

    /// Replaces the committed-usage grid with `grid`.
    ///
    /// Capacities, slot count and horizon are construction-time
    /// invariants and are *not* part of the restore payload; callers
    /// must rebuild the ledger from the same network/horizon first.
    /// Negative cells are rejected, but over-committed cells (above
    /// capacity) are accepted — the raw Algorithm 1 legitimately
    /// overflows by a bounded amount.
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::StateRestore`](crate::VnfrelError) when
    /// `grid` has the wrong length or holds a negative or non-finite
    /// value.
    pub fn restore_used(&mut self, grid: &[f64]) -> Result<(), crate::VnfrelError> {
        if grid.len() != self.used.len() {
            return Err(crate::VnfrelError::StateRestore(
                "usage grid length mismatch",
            ));
        }
        if grid.iter().any(|u| !u.is_finite() || *u < 0.0) {
            return Err(crate::VnfrelError::StateRestore(
                "negative or non-finite usage in snapshot",
            ));
        }
        self.used.copy_from_slice(grid);
        Ok(())
    }

    /// Largest relative violation `max(0, used/cap − 1)` over all
    /// cloudlets and slots.
    pub fn max_overflow(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for (j, row) in self.used.chunks_exact(self.slots.max(1)).enumerate() {
            for &u in row {
                worst = worst.max(u / self.caps[j] - 1.0);
            }
        }
        worst.max(0.0)
    }

    /// Mean utilization (used/cap averaged over cloudlets and slots),
    /// counting over-committed slots at their real ratio.
    pub fn mean_utilization(&self) -> f64 {
        let mut total = 0.0;
        let mut cells = 0usize;
        for (j, row) in self.used.chunks_exact(self.slots.max(1)).enumerate() {
            for &u in row {
                total += u / self.caps[j];
                cells += 1;
            }
        }
        if cells == 0 {
            0.0
        } else {
            total / cells as f64
        }
    }

    /// Number of cloudlets tracked.
    pub fn cloudlet_count(&self) -> usize {
        self.caps.len()
    }

    /// The horizon this ledger covers.
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }
}

impl fmt::Display for CapacityLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ledger: {} cloudlets × {} slots, mean util {:.3}, max overflow {:.3}",
            self.caps.len(),
            self.horizon.len(),
            self.mean_utilization(),
            self.max_overflow()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};

    fn ledger() -> CapacityLedger {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        b.add_cloudlet(a, 10, Reliability::new(0.99).unwrap())
            .unwrap();
        b.add_cloudlet(c, 4, Reliability::new(0.95).unwrap())
            .unwrap();
        CapacityLedger::new(&b.build().unwrap(), Horizon::new(5))
    }

    #[test]
    fn fits_and_charge() {
        let mut l = ledger();
        let c0 = CloudletId(0);
        assert!(l.fits(c0, 0..=2, 10.0));
        assert!(!l.fits(c0, 0..=2, 10.5));
        l.charge(c0, 0..=2, 7.0);
        assert!(l.fits(c0, 0..=2, 3.0));
        assert!(!l.fits(c0, 0..=2, 3.5));
        assert!(l.fits(c0, 3..=4, 10.0)); // other slots untouched
        assert_eq!(l.used(c0, 1), 7.0);
        assert_eq!(l.residual(c0, 1), 3.0);
        assert_eq!(l.used(c0, 4), 0.0);
    }

    #[test]
    fn window_forms_agree_with_iterator_forms() {
        let mut l = ledger();
        let c0 = CloudletId(0);
        l.charge_window(c0, 1, 3, 4.0);
        let mut l2 = ledger();
        l2.charge(c0, 1..=3, 4.0);
        assert_eq!(l, l2, "charge_window must equal charge over the window");
        for amount in [3.0, 6.0, 6.0 + 1e-10, 6.5, 10.0] {
            for (first, last) in [(0, 4), (1, 3), (2, 2), (0, 0), (4, 4)] {
                assert_eq!(
                    l.fits_window(c0, first, last, amount),
                    l.fits(c0, first..=last, amount),
                    "fits_window([{first},{last}], {amount})"
                );
            }
        }
    }

    #[test]
    fn overflow_tracking() {
        let mut l = ledger();
        let c1 = CloudletId(1); // cap 4
        assert_eq!(l.max_overflow(), 0.0);
        l.charge(c1, 0..=0, 6.0);
        assert!((l.max_overflow() - 0.5).abs() < 1e-12);
        assert!(l.residual(c1, 0) < 0.0);
    }

    #[test]
    fn utilization_average() {
        let mut l = ledger();
        // Fill cloudlet 0 fully in all 5 slots: 5 cells at 1.0, 5 at 0.
        l.charge(CloudletId(0), 0..5, 10.0);
        assert!((l.mean_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn release_inverts_charge() {
        let mut l = ledger();
        let c0 = CloudletId(0);
        l.charge(c0, 0..=2, 7.0);
        l.charge(c0, 1..=3, 2.0);
        l.release(c0, 0..=2, 7.0).unwrap();
        assert_eq!(l.used(c0, 0), 0.0);
        assert_eq!(l.used(c0, 1), 2.0);
        assert_eq!(l.used(c0, 3), 2.0);
        l.release(c0, 1..=3, 2.0).unwrap();
        for t in 0..5 {
            assert_eq!(l.used(c0, t), 0.0);
        }
    }

    #[test]
    fn release_of_uncharged_capacity_is_rejected_atomically() {
        let mut l = ledger();
        let c0 = CloudletId(0);
        l.charge(c0, 0..=1, 5.0);
        // Slot 2 was never charged: the whole release must fail and
        // leave slots 0–1 untouched.
        let err = l.release(c0, 0..=2, 5.0).unwrap_err();
        assert!(matches!(
            err,
            crate::VnfrelError::ReleaseUnderflow { slot: 2, .. }
        ));
        assert_eq!(l.used(c0, 0), 5.0);
        assert_eq!(l.used(c0, 1), 5.0);
        assert_eq!(l.used(c0, 2), 0.0);
    }

    #[test]
    fn display_summarises() {
        let l = ledger();
        assert!(l.to_string().contains("2 cloudlets"));
        assert_eq!(l.cloudlet_count(), 2);
        assert_eq!(l.horizon().len(), 5);
    }
}
