//! Schedulers for the VNF service reliability problem under the
//! **off-site** backup scheme (at most one instance of a request per
//! cloudlet; failures across cloudlets are independent).
//!
//! * [`OffsitePrimalDual`] — the paper's Algorithm 2, an online
//!   primal-dual heuristic over the ln-linearized reliability constraint,
//! * [`OffsiteGreedy`] — the evaluation's baseline (accumulate the most
//!   reliable cloudlets first),
//! * [`offline`] — the transformed ILP (Eqs. 48–53) solved by
//!   branch-and-bound or bounded by its LP relaxation.

mod greedy;
pub mod offline;
mod primal_dual;

pub use greedy::OffsiteGreedy;
pub use primal_dual::{OffsitePrimalDual, RejectionCounters};
