use mec_obs::{
    DecisionEvent, NoopSink, Outcome, RejectReason, SitePlacement, TraceEvent, TraceSink,
};
use mec_topology::CloudletId;
use mec_workload::Request;

use crate::instance::{ProblemInstance, Scheme};
use crate::ledger::CapacityLedger;
use crate::pricing::{CheapestFirst, DualPrices};
use crate::schedule::{Decision, Placement};
use crate::scheduler::{OnlineScheduler, SchedulerState};

/// Algorithm 2 — online primal-dual scheduling under the off-site scheme.
///
/// The reliability constraint is handled in log-space: placing one
/// instance at cloudlet `c_j` contributes `ln(1 − r(f_i)·r(c_j)) < 0`
/// toward the target `ln(1 − R_i)`. For an arriving request the algorithm:
///
/// 1. computes for each cloudlet the *price per unit of log-reliability*
///    `Σ_{t ∈ T'_i} λ_{tj} / (−ln(1 − r(f_i)·r(c_j)))`,
/// 2. discards cloudlets failing the payment test
///    `pay_i + ln(1 − R_i)·c(f_i)·ratio_j ≤ 0` (the would-be dual `δ_i`
///    going non-positive),
/// 3. scans the survivors in non-decreasing ratio order, accumulating
///    those with residual capacity in every active slot, until the
///    accumulated log-reliability meets the target,
/// 4. admits (one instance per selected cloudlet, Eq. 67 price update) or
///    rejects if the target is unreachable.
///
/// Unlike the on-site Algorithm 1, capacity is checked before selection,
/// so this scheduler never violates capacity (Theorem 2).
#[derive(Debug)]
pub struct OffsitePrimalDual<'a, S: TraceSink = NoopSink> {
    instance: &'a ProblemInstance,
    /// Decision-event consumer; `NoopSink` (the default) compiles the
    /// instrumentation away entirely.
    sink: S,
    prices: DualPrices,
    ledger: CapacityLedger,
    /// Σ δ_i accumulated over all processed requests.
    sum_delta: f64,
    rejections: RejectionCounters,
    /// Scratch: `(ratio, cloudlet)` keys for the current request.
    keys: Vec<(f64, u32)>,
    /// Scratch: `(cloudlet, ln_coef)` selection for the current request.
    selected: Vec<(usize, f64)>,
}

/// Why requests were rejected, tallied over a run — useful for diagnosing
/// whether an instance is reliability-limited, price-limited, or
/// capacity-limited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RejectionCounters {
    /// The payment test pruned every cloudlet (prices too high for this
    /// payment).
    pub payment_test: usize,
    /// Surviving cloudlets could not accumulate enough log-reliability
    /// (capacity holes or an unreachable requirement).
    pub reliability_unreachable: usize,
}

impl<'a> OffsitePrimalDual<'a, NoopSink> {
    /// Creates the scheduler with all dual prices at zero and tracing
    /// disabled (the hooks compile to nothing).
    pub fn new(instance: &'a ProblemInstance) -> Self {
        Self::with_sink(instance, NoopSink)
    }
}

impl<'a, S: TraceSink> OffsitePrimalDual<'a, S> {
    /// Like [`OffsitePrimalDual::new`] but records one
    /// [`TraceEvent::Decision`] per `decide()` call into `sink`.
    pub fn with_sink(instance: &'a ProblemInstance, sink: S) -> Self {
        let m = instance.cloudlet_count();
        let t = instance.horizon().len();
        OffsitePrimalDual {
            instance,
            sink,
            prices: DualPrices::new(m, t),
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            sum_delta: 0.0,
            rejections: RejectionCounters::default(),
            keys: Vec::with_capacity(m),
            selected: Vec::with_capacity(m),
        }
    }

    /// Current dual price `λ_{tj}`.
    pub fn lambda(&self, cloudlet: CloudletId, slot: usize) -> f64 {
        self.prices.get(cloudlet.index(), slot)
    }

    /// Rejection tallies by cause.
    pub fn rejections(&self) -> RejectionCounters {
        self.rejections
    }

    /// Consumes the scheduler, returning the trace sink (e.g. to read a
    /// [`mec_obs::RingSink`] back out).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Emits the one decision event for the current `decide()` call.
    /// Callers must gate on `S::ENABLED` so the disabled build never
    /// constructs the event.
    fn emit(&mut self, request: &Request, outcome: Outcome) {
        self.sink.record(TraceEvent::Decision(DecisionEvent {
            request: request.id().index(),
            algorithm: "alg2-primal-dual".to_string(),
            scheme: "offsite".to_string(),
            slot: request.arrival(),
            payment: request.payment(),
            outcome,
        }));
    }

    /// The accumulated dual objective `Σ cap_j·λ_{tj} + Σ δ_i` where
    /// `δ_i = max(0, pay_i + ln(1 − R_i)·c(f_i)·min_j ratio_j)` (Eq. 66).
    ///
    /// Unlike the on-site case the paper proves no competitive ratio for
    /// Algorithm 2, so this is a *diagnostic*, not a certified bound.
    pub fn dual_objective(&self) -> f64 {
        let lambda_part: f64 = (0..self.prices.cloudlet_count())
            .map(|j| self.ledger.capacity(CloudletId(j)) * self.prices.row_total(j))
            .sum();
        lambda_part + self.sum_delta
    }
}

impl<S: TraceSink> OnlineScheduler for OffsitePrimalDual<'_, S> {
    fn name(&self) -> &'static str {
        "alg2-primal-dual"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OffSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let compute = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v.compute() as f64,
            None => {
                if S::ENABLED {
                    self.emit(
                        request,
                        Outcome::Reject {
                            reason: RejectReason::UnknownVnf,
                            dual_cost: None,
                            margin: None,
                        },
                    );
                }
                return Decision::Reject;
            }
        };
        let ln_target = request.reliability_requirement().failure().ln(); // < 0
        let first = request.arrival();
        let last = first + request.duration() - 1;

        // Price each cloudlet and apply the payment test (Alg. 2, lines
        // 3–8). `ln(1 − r_f·r_c)` comes from the instance's precomputed
        // table; the window sum of λ is O(1) from the prefix rows.
        self.keys.clear();
        let mut min_ratio = f64::INFINITY;
        for j in 0..self.prices.cloudlet_count() {
            let ln_coef = self.instance.offsite_ln_coef(request.vnf(), CloudletId(j));
            let lambda_sum = self.prices.window_sum(j, first, last);
            let ratio = lambda_sum / (-ln_coef);
            min_ratio = min_ratio.min(ratio);
            // Payment test: pay + ln(1−R)·c·ratio must stay positive.
            if request.payment() + ln_target * compute * ratio <= 0.0 {
                continue;
            }
            self.keys.push((ratio, j as u32));
        }
        // Dual bookkeeping (Eq. 66): δ_i from the cheapest cloudlet,
        // regardless of the later capacity-driven selection.
        if min_ratio.is_finite() {
            self.sum_delta += (request.payment() + ln_target * compute * min_ratio).max(0.0);
        }
        if self.keys.is_empty() {
            self.rejections.payment_test += 1;
            if S::ENABLED {
                // The would-be dual cost of the cheapest site path is
                // `−ln(1−R_i)·c(f_i)·min_ratio`; the payment test margin
                // is `pay_i` minus exactly that.
                let (dual_cost, margin) = if min_ratio.is_finite() {
                    let cheapest = -ln_target * compute * min_ratio;
                    (Some(cheapest), Some(request.payment() - cheapest))
                } else {
                    (None, None)
                };
                self.emit(
                    request,
                    Outcome::Reject {
                        reason: RejectReason::PaymentTest,
                        dual_cost,
                        margin,
                    },
                );
            }
            return Decision::Reject;
        }

        // Accumulate cloudlets with enough residual capacity until the
        // reliability target is met (lines 10–17). Candidates are drawn
        // lazily in ascending (price per unit of log-reliability, id)
        // order — the same order the old full sort produced, but a
        // request that admits on the first few sites never pays for
        // ordering the rest.
        self.selected.clear();
        let mut ln_sum = 0.0;
        {
            let instance = self.instance;
            let vnf_id = request.vnf();
            let ledger = &self.ledger;
            let selected = &mut self.selected;
            let mut it = CheapestFirst::new(&mut self.keys);
            while let Some(j32) = it.next() {
                let j = j32 as usize;
                if !ledger.fits_window(CloudletId(j), first, last, compute) {
                    continue;
                }
                let ln_coef = instance.offsite_ln_coef(vnf_id, CloudletId(j));
                selected.push((j, ln_coef));
                ln_sum += ln_coef;
                if ln_sum <= ln_target + 1e-12 {
                    break;
                }
            }
        }
        if ln_sum > ln_target + 1e-12 {
            self.rejections.reliability_unreachable += 1;
            if S::ENABLED {
                // Report the cost of the partial selection that still
                // fell short of the log-reliability target.
                let partial: f64 = self
                    .selected
                    .iter()
                    .map(|&(j, _)| compute * self.prices.window_sum(j, first, last))
                    .sum();
                let dual_cost = (!self.selected.is_empty()).then_some(partial);
                self.emit(
                    request,
                    Outcome::Reject {
                        reason: RejectReason::ReliabilityInfeasible,
                        dual_cost,
                        margin: None,
                    },
                );
            }
            return Decision::Reject;
        }

        // Capture per-site dual costs *before* the price update below
        // mutates the very prices they derive from.
        let mut traced_sites = Vec::new();
        if S::ENABLED {
            traced_sites = self
                .selected
                .iter()
                .map(|&(j, _)| SitePlacement {
                    cloudlet: j,
                    instances: 1,
                    dual_cost: compute * self.prices.window_sum(j, first, last),
                })
                .collect();
        }

        // Admit: one instance per selected cloudlet; charge capacity and
        // update prices (Eq. 67); each touched prefix row rebuilds in
        // O(T).
        let d = request.duration() as f64;
        let pay = request.payment();
        for i in 0..self.selected.len() {
            let (j, ln_coef) = self.selected[i];
            self.ledger
                .charge_window(CloudletId(j), first, last, compute);
            let cap = self.ledger.capacity(CloudletId(j));
            // ln(1−R)/ln(1−r_f·r_c) ≥ 0: both logs are negative.
            let factor = ln_target * compute / (ln_coef * cap);
            self.prices
                .update_window(j, first, last, |l| l * (1.0 + factor) + factor * pay / d);
        }
        if S::ENABLED {
            let dual_cost: f64 = traced_sites.iter().map(|s| s.dual_cost).sum();
            // δ_i (Eq. 66): margin of the cheapest-site payment test.
            let margin = pay + ln_target * compute * min_ratio;
            self.emit(
                request,
                Outcome::Admit {
                    dual_cost,
                    margin,
                    sites: traced_sites,
                },
            );
        }
        Decision::Admit(Placement::OffSite {
            cloudlets: self.selected.iter().map(|&(j, _)| CloudletId(j)).collect(),
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }

    // Counter order: [payment_test, reliability_unreachable].
    fn export_state(&self) -> SchedulerState {
        SchedulerState {
            used: self.ledger.used_grid().to_vec(),
            lambda: self.prices.values().to_vec(),
            sum_delta: self.sum_delta,
            counters: vec![
                self.rejections.payment_test as u64,
                self.rejections.reliability_unreachable as u64,
            ],
        }
    }

    fn import_state(&mut self, state: &SchedulerState) -> Result<(), crate::VnfrelError> {
        if state.counters.len() != 2 {
            return Err(crate::VnfrelError::StateRestore(
                "off-site counter vector must have exactly 2 entries",
            ));
        }
        if !state.sum_delta.is_finite() {
            return Err(crate::VnfrelError::StateRestore(
                "non-finite sum_delta in snapshot",
            ));
        }
        // Pre-validate the usage grid so a failure below cannot leave the
        // scheduler half-restored (DualPrices::restore also validates
        // before mutating).
        if state.used.len() != self.ledger.used_grid().len()
            || state.used.iter().any(|u| !u.is_finite() || *u < 0.0)
        {
            return Err(crate::VnfrelError::StateRestore(
                "usage grid does not fit this scheduler",
            ));
        }
        self.prices.restore(&state.lambda)?;
        self.ledger.restore_used(&state.used)?;
        self.sum_delta = state.sum_delta;
        self.rejections = RejectionCounters {
            payment_test: state.counters[0] as usize,
            reliability_unreachable: state.counters[1] as usize,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::offsite_availability;
    use crate::scheduler::run_online;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestId, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn instance(cloudlets: &[(u64, f64)], horizon: usize) -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, &(cap, r)) in cloudlets.iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, cap, rel(r)).unwrap();
        }
        ProblemInstance::new(
            b.build().unwrap(),
            VnfCatalog::standard(),
            Horizon::new(horizon),
        )
        .unwrap()
    }

    fn request(id: usize, vnf: usize, req: f64, pay: f64) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(vnf),
            rel(req),
            0,
            2,
            pay,
            Horizon::new(10),
        )
        .unwrap()
    }

    #[test]
    fn admits_with_enough_cloudlets_and_meets_reliability() {
        let inst = instance(&[(10, 0.99), (10, 0.98), (10, 0.97)], 10);
        let mut alg = OffsitePrimalDual::new(&inst);
        // LoadBalancer (vnf 3): r = 0.9999, c = 2. Requirement 0.995
        // needs ≥ 2 cloudlets (one: ≤ 0.99).
        let r = request(0, 3, 0.995, 20.0);
        match alg.decide(&r) {
            Decision::Admit(Placement::OffSite { cloudlets }) => {
                assert!(cloudlets.len() >= 2, "needs multiple sites");
                // Verify the achieved availability.
                let vnf = inst.catalog().get(VnfTypeId(3)).unwrap();
                let rels = cloudlets
                    .iter()
                    .map(|&c| inst.network().cloudlet(c).unwrap().reliability());
                assert!(offsite_availability(vnf.reliability(), rels) >= 0.995);
            }
            other => panic!("expected admission, got {other:?}"),
        }
    }

    #[test]
    fn reliability_can_exceed_any_single_cloudlet() {
        // Off-site's raison d'être: requirement above every cloudlet's
        // reliability is satisfiable with enough sites.
        let inst = instance(&[(10, 0.9), (10, 0.9), (10, 0.9), (10, 0.9)], 10);
        let mut alg = OffsitePrimalDual::new(&inst);
        // ProxyCache (vnf 8): r = 0.9995, c = 1. Requirement 0.95 > 0.9.
        let r = request(0, 8, 0.95, 10.0);
        assert!(alg.decide(&r).is_admit());
    }

    #[test]
    fn rejects_when_even_all_cloudlets_cannot_reach_target() {
        let inst = instance(&[(10, 0.5)], 10);
        let mut alg = OffsitePrimalDual::new(&inst);
        // One weak cloudlet, requirement 0.99: 1 − (1 − r_f·0.5) < 0.99.
        let r = request(0, 8, 0.99, 100.0);
        assert_eq!(alg.decide(&r), Decision::Reject);
    }

    #[test]
    fn never_violates_capacity() {
        let inst = instance(&[(4, 0.99), (4, 0.98)], 10);
        let mut alg = OffsitePrimalDual::new(&inst);
        let reqs: Vec<Request> = (0..60).map(|i| request(i, 8, 0.95, 5.0)).collect();
        let schedule = run_online(&mut alg, &reqs).unwrap();
        assert_eq!(alg.ledger().max_overflow(), 0.0);
        assert!(schedule.admitted_count() < 60);
    }

    #[test]
    fn prices_rise_on_selected_cloudlets_only() {
        let inst = instance(&[(10, 0.99), (10, 0.98), (10, 0.97)], 10);
        let mut alg = OffsitePrimalDual::new(&inst);
        let r = request(0, 8, 0.9, 10.0); // single cheap site suffices
        let d = alg.decide(&r);
        let Decision::Admit(Placement::OffSite { cloudlets }) = d else {
            panic!("expected admission");
        };
        assert_eq!(cloudlets.len(), 1);
        let chosen = cloudlets[0];
        assert!(alg.lambda(chosen, 0) > 0.0);
        assert!(alg.lambda(chosen, 1) > 0.0);
        assert_eq!(alg.lambda(chosen, 2), 0.0); // outside the window
        for c in inst.network().cloudlets() {
            if c.id() != chosen {
                assert_eq!(alg.lambda(c.id(), 0), 0.0);
            }
        }
    }

    #[test]
    fn payment_test_prunes_expensive_cloudlets() {
        let inst = instance(&[(10, 0.99)], 10);
        let mut alg = OffsitePrimalDual::new(&inst);
        // Saturate the price by admitting many high-payers on slot 0-1.
        for i in 0..20 {
            alg.decide(&request(i, 8, 0.9, 50.0));
        }
        // Now a very low payer must be rejected by the payment test.
        let d = alg.decide(&request(20, 8, 0.9, 1e-6));
        assert_eq!(d, Decision::Reject);
    }

    #[test]
    fn rejection_counters_distinguish_causes() {
        // Unreachable requirement → reliability_unreachable.
        let weak = instance(&[(10, 0.5)], 10);
        let mut alg = OffsitePrimalDual::new(&weak);
        alg.decide(&request(0, 8, 0.99, 100.0));
        assert_eq!(alg.rejections().reliability_unreachable, 1);
        assert_eq!(alg.rejections().payment_test, 0);

        // Saturated prices + tiny payment → payment_test.
        let strong = instance(&[(10, 0.99)], 10);
        let mut alg = OffsitePrimalDual::new(&strong);
        for i in 0..20 {
            alg.decide(&request(i, 8, 0.9, 50.0));
        }
        let before = alg.rejections().payment_test;
        alg.decide(&request(20, 8, 0.9, 1e-6));
        assert_eq!(alg.rejections().payment_test, before + 1);
    }

    #[test]
    fn dual_objective_upper_bounds_revenue_in_practice() {
        let inst = instance(&[(8, 0.99), (8, 0.98)], 10);
        let mut alg = OffsitePrimalDual::new(&inst);
        let reqs: Vec<Request> = (0..50)
            .map(|i| request(i, 8, 0.9, 2.0 + (i % 9) as f64))
            .collect();
        let schedule = run_online(&mut alg, &reqs).unwrap();
        // Diagnostic (no proved ratio for Algorithm 2), but the dual
        // accumulation should still dominate collected revenue.
        assert!(
            schedule.revenue() <= alg.dual_objective() + 1e-6,
            "revenue {} vs dual {}",
            schedule.revenue(),
            alg.dual_objective()
        );
        assert!(alg.dual_objective().is_finite());
    }

    #[test]
    fn one_instance_per_cloudlet() {
        let inst = instance(&[(10, 0.95), (10, 0.95), (10, 0.95)], 10);
        let mut alg = OffsitePrimalDual::new(&inst);
        let r = request(0, 8, 0.99, 30.0);
        if let Decision::Admit(Placement::OffSite { cloudlets }) = alg.decide(&r) {
            let mut unique = cloudlets.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), cloudlets.len(), "duplicate cloudlets");
        } else {
            panic!("expected admission");
        }
    }
}
