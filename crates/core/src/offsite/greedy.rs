use mec_obs::{
    DecisionEvent, NoopSink, Outcome, RejectReason, SitePlacement, TraceEvent, TraceSink,
};
use mec_topology::CloudletId;
use mec_workload::Request;

use crate::instance::{ProblemInstance, Scheme};
use crate::ledger::CapacityLedger;
use crate::schedule::{Decision, Placement};
use crate::scheduler::OnlineScheduler;

/// The evaluation's greedy baseline under the off-site scheme.
///
/// Scans cloudlets in decreasing reliability order, placing one instance
/// in each cloudlet that still has residual capacity over the request's
/// window, until the accumulated availability meets `R_i`; rejects if the
/// target is unreachable. Payments are ignored. As Section VI-C observes,
/// this baseline exhausts the reliable cloudlets first and then "fails to
/// admit any incoming requests in spite of existing lots of failure-prone
/// cloudlets" — the behaviour the Figure 2(b) sweep exposes.
#[derive(Debug)]
pub struct OffsiteGreedy<'a, S: TraceSink = NoopSink> {
    instance: &'a ProblemInstance,
    /// Cloudlet ids sorted by reliability, most reliable first.
    order: Vec<CloudletId>,
    ledger: CapacityLedger,
    /// Scratch: cloudlets accumulated for the current request, so the
    /// (common) reject path never allocates.
    selected: Vec<CloudletId>,
    /// Decision-event consumer; `NoopSink` (the default) compiles the
    /// instrumentation away entirely.
    sink: S,
}

impl<'a> OffsiteGreedy<'a, NoopSink> {
    /// Creates the greedy scheduler with tracing disabled.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        Self::with_sink(instance, NoopSink)
    }
}

impl<'a, S: TraceSink> OffsiteGreedy<'a, S> {
    /// Like [`OffsiteGreedy::new`] but records one
    /// [`TraceEvent::Decision`] per `decide()` call into `sink`.
    ///
    /// Greedy ignores dual prices, so admission events carry a zero
    /// `dual_cost` and the raw payment as `margin`.
    pub fn with_sink(instance: &'a ProblemInstance, sink: S) -> Self {
        let mut order: Vec<CloudletId> = instance.network().cloudlets().map(|c| c.id()).collect();
        order.sort_by(|&a, &b| {
            let ra = instance
                .network()
                .cloudlet(a)
                .expect("valid id")
                .reliability();
            let rb = instance
                .network()
                .cloudlet(b)
                .expect("valid id")
                .reliability();
            rb.cmp(&ra).then(a.index().cmp(&b.index()))
        });
        OffsiteGreedy {
            instance,
            order,
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            selected: Vec::new(),
            sink,
        }
    }

    /// Consumes the scheduler, returning the trace sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Emits the one decision event for the current `decide()` call.
    /// Callers must gate on `S::ENABLED` so the disabled build never
    /// constructs the event.
    fn emit(&mut self, request: &Request, outcome: Outcome) {
        self.sink.record(TraceEvent::Decision(DecisionEvent {
            request: request.id().index(),
            algorithm: "greedy-offsite".to_string(),
            scheme: "offsite".to_string(),
            slot: request.arrival(),
            payment: request.payment(),
            outcome,
        }));
    }
}

impl<S: TraceSink> OnlineScheduler for OffsiteGreedy<'_, S> {
    fn name(&self) -> &'static str {
        "greedy-offsite"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OffSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let compute = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v.compute() as f64,
            None => {
                if S::ENABLED {
                    self.emit(
                        request,
                        Outcome::Reject {
                            reason: RejectReason::UnknownVnf,
                            dual_cost: None,
                            margin: None,
                        },
                    );
                }
                return Decision::Reject;
            }
        };
        let ln_target = request.reliability_requirement().failure().ln();
        let first = request.arrival();
        let last = first + request.duration() - 1;

        self.selected.clear();
        let mut ln_sum = 0.0;
        for &cid in &self.order {
            if !self.ledger.fits_window(cid, first, last, compute) {
                continue;
            }
            ln_sum += self.instance.offsite_ln_coef(request.vnf(), cid);
            self.selected.push(cid);
            if ln_sum <= ln_target + 1e-12 {
                break;
            }
        }
        if ln_sum > ln_target + 1e-12 {
            if S::ENABLED {
                // All capacity holes look the same to greedy: whatever
                // fit could not accumulate enough log-reliability.
                self.emit(
                    request,
                    Outcome::Reject {
                        reason: RejectReason::ReliabilityInfeasible,
                        dual_cost: None,
                        margin: None,
                    },
                );
            }
            return Decision::Reject;
        }
        for &cid in &self.selected {
            self.ledger.charge_window(cid, first, last, compute);
        }
        if S::ENABLED {
            let sites = self
                .selected
                .iter()
                .map(|&cid| SitePlacement {
                    cloudlet: cid.index(),
                    instances: 1,
                    dual_cost: 0.0,
                })
                .collect();
            self.emit(
                request,
                Outcome::Admit {
                    // Greedy is payment- and price-oblivious.
                    dual_cost: 0.0,
                    margin: request.payment(),
                    sites,
                },
            );
        }
        Decision::Admit(Placement::OffSite {
            cloudlets: self.selected.clone(),
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::run_online;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestId, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn instance(cloudlets: &[(u64, f64)]) -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, &(cap, r)) in cloudlets.iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, cap, rel(r)).unwrap();
        }
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(10)).unwrap()
    }

    fn request(id: usize, req: f64, pay: f64) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(8), // ProxyCache: compute 1, r = 0.9995
            rel(req),
            0,
            2,
            pay,
            Horizon::new(10),
        )
        .unwrap()
    }

    #[test]
    fn uses_most_reliable_cloudlet_first() {
        let inst = instance(&[(10, 0.95), (10, 0.999)]);
        let mut g = OffsiteGreedy::new(&inst);
        match g.decide(&request(0, 0.9, 1.0)) {
            Decision::Admit(Placement::OffSite { cloudlets }) => {
                assert_eq!(cloudlets, vec![CloudletId(1)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn accumulates_until_requirement_met() {
        let inst = instance(&[(10, 0.9), (10, 0.9), (10, 0.9)]);
        let mut g = OffsiteGreedy::new(&inst);
        // Requirement 0.98 needs more than one 0.9-reliability site.
        match g.decide(&request(0, 0.98, 1.0)) {
            Decision::Admit(Placement::OffSite { cloudlets }) => {
                assert!(cloudlets.len() >= 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_unreachable_requirement() {
        let inst = instance(&[(10, 0.5)]);
        let mut g = OffsiteGreedy::new(&inst);
        assert_eq!(g.decide(&request(0, 0.999, 100.0)), Decision::Reject);
    }

    #[test]
    fn exhausts_reliable_cloudlets_then_struggles() {
        // One highly reliable cloudlet, several poor ones. Greedy burns
        // the reliable one first; once full, high requirements need many
        // poor sites and admissions become harder.
        let inst = instance(&[(4, 0.999), (10, 0.8), (10, 0.8)]);
        let mut g = OffsiteGreedy::new(&inst);
        let reqs: Vec<Request> = (0..20).map(|i| request(i, 0.97, 1.0)).collect();
        let schedule = run_online(&mut g, &reqs).unwrap();
        assert!(schedule.admitted_count() < 20);
        assert_eq!(g.ledger().max_overflow(), 0.0);
    }

    #[test]
    fn never_violates_capacity() {
        let inst = instance(&[(3, 0.99), (3, 0.98)]);
        let mut g = OffsiteGreedy::new(&inst);
        let reqs: Vec<Request> = (0..30).map(|i| request(i, 0.9, 1.0)).collect();
        run_online(&mut g, &reqs).unwrap();
        assert_eq!(g.ledger().max_overflow(), 0.0);
    }
}
