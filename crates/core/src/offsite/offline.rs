//! Offline optimum for the off-site scheme — the ln-transformed ILP of
//! Eqs. (48)–(53), solved by branch-and-bound (substituting for CPLEX).
//!
//! The INP reliability constraint (Eq. 10) is linearized exactly as in
//! Section V: taking logarithms turns the failure product into the sum
//! `Σ_j ln(1 − r(f_i)·r(c_j))·Y_ij`, giving the row pair (50)/(51). Row
//! (50) is implemented in the equivalent ratio form
//! `X_i ≤ Σ_j a_ij·Y_ij` with `a_ij = ln(1 − r_f·r_c)/ln(1 − R_i) > 0`
//! (dividing by the negative `ln(1 − R_i)` flips the inequality); row
//! (51) pins every `Y_ij` to zero when `X_i = 0`. `X_i ≤ 1` and
//! `Y_ij ≤ 1` are variable bounds, not rows.

use lp_solver::{solve_lp, solve_mip, Cmp, Model, Sense, VarId};
use mec_topology::CloudletId;
use mec_workload::Request;

use crate::error::VnfrelError;
use crate::instance::ProblemInstance;
use crate::reliability::offsite_ln_coefficient;
use crate::schedule::{Decision, Placement, Schedule};

pub use crate::onsite::offline::{OfflineConfig, OfflineSolution};

/// Builds and solves the offline off-site ILP.
///
/// # Errors
///
/// Propagates model validation and solver errors; an instance/request
/// mismatch surfaces as [`VnfrelError::Workload`].
pub fn solve(
    instance: &ProblemInstance,
    requests: &[Request],
    config: &OfflineConfig,
) -> Result<OfflineSolution, VnfrelError> {
    instance.check_requests(requests)?;
    if requests.is_empty() {
        return Ok(OfflineSolution {
            upper_bound: 0.0,
            incumbent: Some((0.0, Schedule::new())),
            exact: true,
        });
    }

    let m = instance.cloudlet_count();
    let mut model = Model::new(Sense::Maximize);

    // X_i (admission) and Y_ij (placement) variables.
    let xs: Vec<VarId> = requests
        .iter()
        .map(|r| model.add_binary_var(r.payment()))
        .collect::<Result<_, _>>()?;
    let mut ys: Vec<Vec<VarId>> = Vec::with_capacity(requests.len());
    for _ in requests {
        let row: Vec<VarId> = (0..m)
            .map(|_| model.add_binary_var(0.0))
            .collect::<Result<_, _>>()?;
        ys.push(row);
    }

    // Per-request reliability rows.
    for (i, r) in requests.iter().enumerate() {
        let vnf = instance.catalog().require(r.vnf())?;
        let ln_req = r.reliability_requirement().failure().ln(); // < 0
                                                                 // (50): X_i − Σ_j a_ij·Y_ij ≤ 0 with a_ij = ln_coef/ln_req > 0.
        let mut terms = vec![(xs[i], 1.0)];
        // (51): Σ_j ln_coef·Y_ij − L·X_i ≥ 0, pinning Y to 0 when X = 0.
        let mut lower_terms = Vec::new();
        let mut l_bound = 0.0;
        for cloudlet in instance.network().cloudlets() {
            let j = cloudlet.id().index();
            let ln_coef = offsite_ln_coefficient(vnf.reliability(), cloudlet.reliability());
            terms.push((ys[i][j], -(ln_coef / ln_req)));
            lower_terms.push((ys[i][j], ln_coef));
            l_bound += ln_coef;
        }
        model.add_constraint(terms, Cmp::Le, 0.0)?;
        lower_terms.push((xs[i], -l_bound));
        model.add_constraint(lower_terms, Cmp::Ge, 0.0)?;
    }

    // Capacity per (slot, cloudlet): Σ_i V_i[t]·c(f_i)·Y_ij ≤ cap_j.
    for cloudlet in instance.network().cloudlets() {
        let j = cloudlet.id().index();
        for t in instance.horizon().slots() {
            let mut terms = Vec::new();
            for (i, r) in requests.iter().enumerate() {
                if r.active_at(t) {
                    let c = instance.catalog().require(r.vnf())?.compute() as f64;
                    terms.push((ys[i][j], c));
                }
            }
            if !terms.is_empty() {
                model.add_constraint(terms, Cmp::Le, cloudlet.capacity() as f64)?;
            }
        }
    }

    if config.lp_only {
        let bound = match solve_lp(&model)? {
            lp_solver::LpOutcome::Optimal(s) => s.objective,
            _ => 0.0,
        };
        return Ok(OfflineSolution {
            upper_bound: bound,
            incumbent: None,
            exact: false,
        });
    }

    match solve_mip(&model, &config.bnb)? {
        lp_solver::MipOutcome::Optimal(sol) | lp_solver::MipOutcome::Feasible(sol) => {
            let exact = sol.gap() < 1e-9;
            let schedule = extract_schedule(requests, m, &xs, &ys, &sol.values);
            Ok(OfflineSolution {
                upper_bound: sol.bound,
                incumbent: Some((schedule.revenue(), schedule)),
                exact,
            })
        }
        lp_solver::MipOutcome::NoIncumbent { bound } => Ok(OfflineSolution {
            upper_bound: bound,
            incumbent: None,
            exact: false,
        }),
        lp_solver::MipOutcome::Infeasible | lp_solver::MipOutcome::Unbounded => {
            // All-zero is feasible, so this is unreachable; be defensive.
            let mut s = Schedule::new();
            for r in requests {
                s.record(r, Decision::Reject);
            }
            Ok(OfflineSolution {
                upper_bound: 0.0,
                incumbent: Some((0.0, s)),
                exact: false,
            })
        }
    }
}

fn extract_schedule(
    requests: &[Request],
    m: usize,
    xs: &[VarId],
    ys: &[Vec<VarId>],
    values: &[f64],
) -> Schedule {
    let mut s = Schedule::new();
    for (i, r) in requests.iter().enumerate() {
        if values[xs[i].index()] > 0.5 {
            let cloudlets: Vec<CloudletId> = (0..m)
                .filter(|&j| values[ys[i][j].index()] > 0.5)
                .map(CloudletId)
                .collect();
            if cloudlets.is_empty() {
                s.record(r, Decision::Reject);
            } else {
                s.record(r, Decision::Admit(Placement::OffSite { cloudlets }));
            }
        } else {
            s.record(r, Decision::Reject);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::offsite_availability;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestId, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn instance(cloudlets: &[(u64, f64)]) -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, &(cap, r)) in cloudlets.iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, cap, rel(r)).unwrap();
        }
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(8)).unwrap()
    }

    fn request(id: usize, req: f64, pay: f64) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(8), // ProxyCache: compute 1, r = 0.9995
            rel(req),
            0,
            2,
            pay,
            Horizon::new(8),
        )
        .unwrap()
    }

    #[test]
    fn admits_when_feasible_and_respects_reliability() {
        let inst = instance(&[(10, 0.95), (10, 0.95), (10, 0.95)]);
        let reqs = vec![request(0, 0.98, 5.0)];
        let sol = solve(&inst, &reqs, &OfflineConfig::default()).unwrap();
        assert!(sol.exact);
        assert!((sol.revenue() - 5.0).abs() < 1e-6);
        let (_, schedule) = sol.incumbent.unwrap();
        let p = schedule.placement(RequestId(0)).unwrap();
        let Placement::OffSite { cloudlets } = p else {
            panic!("wrong scheme");
        };
        let vnf = inst.catalog().get(VnfTypeId(8)).unwrap();
        let rels = cloudlets
            .iter()
            .map(|&c| inst.network().cloudlet(c).unwrap().reliability());
        assert!(offsite_availability(vnf.reliability(), rels) >= 0.98);
    }

    #[test]
    fn selects_high_payers_under_scarcity() {
        // Capacity for only one instance per slot; two competing requests.
        let inst = instance(&[(1, 0.99)]);
        let reqs = vec![request(0, 0.9, 2.0), request(1, 0.9, 7.0)];
        let sol = solve(&inst, &reqs, &OfflineConfig::default()).unwrap();
        assert!((sol.revenue() - 7.0).abs() < 1e-6, "got {}", sol.revenue());
        let (_, schedule) = sol.incumbent.unwrap();
        assert!(!schedule.is_admitted(RequestId(0)));
        assert!(schedule.is_admitted(RequestId(1)));
    }

    #[test]
    fn unreachable_requirement_rejected() {
        let inst = instance(&[(10, 0.5)]);
        let reqs = vec![request(0, 0.999, 100.0)];
        let sol = solve(&inst, &reqs, &OfflineConfig::default()).unwrap();
        assert_eq!(sol.revenue(), 0.0);
    }

    #[test]
    fn lp_bound_dominates_exact() {
        let inst = instance(&[(2, 0.99), (2, 0.95)]);
        let reqs: Vec<Request> = (0..5).map(|i| request(i, 0.9, 1.0 + i as f64)).collect();
        let exact = solve(&inst, &reqs, &OfflineConfig::default()).unwrap();
        let lp = solve(
            &inst,
            &reqs,
            &OfflineConfig {
                lp_only: true,
                ..OfflineConfig::default()
            },
        )
        .unwrap();
        assert!(lp.upper_bound + 1e-6 >= exact.revenue());
    }

    #[test]
    fn empty_request_set() {
        let inst = instance(&[(10, 0.99)]);
        let sol = solve(&inst, &[], &OfflineConfig::default()).unwrap();
        assert_eq!(sol.revenue(), 0.0);
        assert!(sol.exact);
    }
}
