//! Reliability arithmetic for the on-site and off-site backup schemes.
//!
//! All formulas follow Section III of the paper. A VNF instance placed in
//! cloudlet `c_j` is available only while both the software and the
//! cloudlet are up; the two schemes combine instances differently:
//!
//! * **on-site** — all `N_ij` instances share cloudlet `c_j`, so
//!   `P(A_i) = r(c_j)·(1 − (1 − r(f_i))^{N_ij})` (Eq. 2) and the minimum
//!   replica count is `N_ij = ⌈log_{1−r(f_i)}(1 − R_i / r(c_j))⌉` (Eq. 3),
//!   defined only when `r(c_j) > R_i`;
//! * **off-site** — one instance per chosen cloudlet, failures independent,
//!   so `P(A_i) = 1 − Π_j (1 − r(f_i)·r(c_j))` (Eq. 10).

use mec_topology::Reliability;

/// Availability of an on-site placement with `n` instances (Eq. 2).
///
/// `r(c_j) · (1 − (1 − r(f_i))^n)`; `n = 0` yields 0.
pub fn onsite_availability(vnf: Reliability, cloudlet: Reliability, n: u32) -> f64 {
    cloudlet.value() * (1.0 - vnf.failure().powi(n as i32))
}

/// Minimum number of on-site instances meeting requirement `req` (Eq. 3).
///
/// Returns `None` when `r(c_j) ≤ R_i`: the cloudlet caps achievable
/// availability at `r(c_j)`, so no replica count suffices.
///
/// # Example
///
/// ```
/// # use mec_topology::Reliability;
/// # use vnfrel::reliability::{onsite_instances, onsite_availability};
/// let vnf = Reliability::new(0.9).unwrap();
/// let cloudlet = Reliability::new(0.999).unwrap();
/// let req = Reliability::new(0.99).unwrap();
/// let n = onsite_instances(vnf, cloudlet, req).unwrap();
/// assert!(onsite_availability(vnf, cloudlet, n) >= req.value());
/// assert!(n == 1 || onsite_availability(vnf, cloudlet, n - 1) < req.value());
/// ```
pub fn onsite_instances(vnf: Reliability, cloudlet: Reliability, req: Reliability) -> Option<u32> {
    if cloudlet.value() <= req.value() {
        return None;
    }
    // N = ⌈ ln(1 − R/r_c) / ln(1 − r_f) ⌉, both logs negative.
    let target = 1.0 - req.value() / cloudlet.value(); // in (0, 1)
    let n = (target.ln() / vnf.ln_failure()).ceil();
    // Guard against the exact-boundary case where floating-point division
    // lands a hair below the true integer; verify and bump if needed.
    let mut n = n.max(1.0) as u32;
    while onsite_availability(vnf, cloudlet, n) < req.value() {
        n += 1;
        debug_assert!(n < 10_000, "runaway replica count");
    }
    Some(n)
}

/// Availability of an off-site placement across the given cloudlets
/// (Eq. 10): `1 − Π (1 − r(f_i)·r(c_j))`.
pub fn offsite_availability<I>(vnf: Reliability, cloudlets: I) -> f64
where
    I: IntoIterator<Item = Reliability>,
{
    let fail: f64 = cloudlets
        .into_iter()
        .map(|c| 1.0 - vnf.value() * c.value())
        .product();
    1.0 - fail
}

/// The linearization coefficient `ln(1 − r(f_i)·r(c_j))` used by the
/// off-site ILP transformation (Eq. 44) and Algorithm 2 — always negative.
pub fn offsite_ln_coefficient(vnf: Reliability, cloudlet: Reliability) -> f64 {
    (1.0 - vnf.value() * cloudlet.value()).ln()
}

/// Whether a set of off-site cloudlets meets requirement `req`, computed
/// in log-space (`Σ ln(1 − r_f·r_c) ≤ ln(1 − R)`), which is how both
/// Algorithm 2 and the ILP decide it.
pub fn offsite_meets_requirement<I>(vnf: Reliability, cloudlets: I, req: Reliability) -> bool
where
    I: IntoIterator<Item = Reliability>,
{
    let sum: f64 = cloudlets
        .into_iter()
        .map(|c| offsite_ln_coefficient(vnf, c))
        .sum();
    sum <= req.failure().ln() + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn single_instance_availability() {
        // One instance: r_c · r_f.
        let a = onsite_availability(rel(0.9), rel(0.99), 1);
        assert!((a - 0.891).abs() < 1e-12);
        // Zero instances: nothing runs.
        assert_eq!(onsite_availability(rel(0.9), rel(0.99), 0), 0.0);
    }

    #[test]
    fn availability_increases_with_replicas_but_caps_at_cloudlet() {
        let vnf = rel(0.9);
        let c = rel(0.995);
        let mut prev = 0.0;
        for n in 1..12 {
            let a = onsite_availability(vnf, c, n);
            assert!(a > prev);
            assert!(a < c.value());
            prev = a;
        }
    }

    #[test]
    fn onsite_instances_minimal() {
        let vnf = rel(0.9);
        let c = rel(0.999);
        for req in [0.9, 0.95, 0.99, 0.995, 0.998] {
            let req = rel(req);
            let n = onsite_instances(vnf, c, req).unwrap();
            assert!(
                onsite_availability(vnf, c, n) >= req.value(),
                "n={n} too small"
            );
            if n > 1 {
                assert!(
                    onsite_availability(vnf, c, n - 1) < req.value(),
                    "n={n} not minimal for req {}",
                    req.value()
                );
            }
        }
    }

    #[test]
    fn onsite_instances_unreachable_requirement() {
        // r_c ≤ R → impossible.
        assert_eq!(onsite_instances(rel(0.9), rel(0.95), rel(0.95)), None);
        assert_eq!(onsite_instances(rel(0.9), rel(0.94), rel(0.95)), None);
        // Just above is possible.
        assert!(onsite_instances(rel(0.9), rel(0.951), rel(0.95)).is_some());
    }

    #[test]
    fn onsite_instances_one_when_requirement_low() {
        // r_f·r_c = 0.891 ≥ 0.5 → a single instance suffices.
        assert_eq!(onsite_instances(rel(0.9), rel(0.99), rel(0.5)), Some(1));
    }

    #[test]
    fn onsite_instances_worked_example() {
        // vnf 0.9, cloudlet 0.9999, req 0.99:
        // target = 1 − 0.99/0.9999 ≈ 0.009901; ln/ln(0.1) ≈ 2.004 → N = 3.
        assert_eq!(onsite_instances(rel(0.9), rel(0.9999), rel(0.99)), Some(3));
    }

    #[test]
    fn offsite_availability_matches_closed_form() {
        let vnf = rel(0.9);
        let sites = [rel(0.99), rel(0.98)];
        let p = offsite_availability(vnf, sites);
        let expect = 1.0 - (1.0 - 0.9 * 0.99) * (1.0 - 0.9 * 0.98);
        assert!((p - expect).abs() < 1e-12);
        // Empty set: availability 0.
        assert_eq!(offsite_availability(vnf, std::iter::empty()), 0.0);
    }

    #[test]
    fn offsite_log_space_check_agrees_with_direct() {
        let vnf = rel(0.92);
        let sites = [rel(0.99), rel(0.97), rel(0.95)];
        for req in [0.9, 0.99, 0.999, 0.9999, 0.99999] {
            let req = rel(req);
            let direct = offsite_availability(vnf, sites.iter().copied()) >= req.value();
            let logspace = offsite_meets_requirement(vnf, sites.iter().copied(), req);
            assert_eq!(direct, logspace, "disagree at req {}", req.value());
        }
    }

    #[test]
    fn offsite_ln_coefficient_is_negative() {
        assert!(offsite_ln_coefficient(rel(0.9), rel(0.99)) < 0.0);
        assert!(offsite_ln_coefficient(rel(0.0001), rel(0.0001)) < 0.0);
    }

    #[test]
    fn offsite_can_exceed_single_cloudlet_reliability() {
        // The whole point of the off-site scheme: availability can exceed
        // every individual cloudlet's reliability.
        let vnf = rel(0.99);
        let sites = vec![rel(0.95), rel(0.95), rel(0.95)];
        let p = offsite_availability(vnf, sites);
        assert!(p > 0.95);
    }
}
