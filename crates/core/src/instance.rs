use std::fmt;

use mec_topology::Network;
use mec_workload::{Horizon, Request, VnfCatalog};

use crate::error::VnfrelError;

/// Which backup scheme a scheduler operates under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// All primary and backup instances of a request share one cloudlet.
    OnSite,
    /// At most one instance of a request per cloudlet.
    OffSite,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::OnSite => write!(f, "on-site"),
            Scheme::OffSite => write!(f, "off-site"),
        }
    }
}

/// A complete problem instance: the MEC network, the VNF catalog, and the
/// slotted monitoring horizon.
///
/// Requests are kept separate because the online algorithms consume them
/// as a stream; [`ProblemInstance::check_requests`] validates that a
/// stream is compatible with this instance.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    network: Network,
    catalog: VnfCatalog,
    horizon: Horizon,
}

impl ProblemInstance {
    /// Bundles a network, catalog, and horizon into an instance.
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::InvalidInstance`] if the network has no
    /// cloudlets or the catalog is empty.
    pub fn new(
        network: Network,
        catalog: VnfCatalog,
        horizon: Horizon,
    ) -> Result<Self, VnfrelError> {
        if network.cloudlet_count() == 0 {
            return Err(VnfrelError::InvalidInstance("network has no cloudlets"));
        }
        if catalog.is_empty() {
            return Err(VnfrelError::InvalidInstance("vnf catalog is empty"));
        }
        Ok(ProblemInstance {
            network,
            catalog,
            horizon,
        })
    }

    /// The MEC network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The VNF catalog.
    pub fn catalog(&self) -> &VnfCatalog {
        &self.catalog
    }

    /// The monitoring horizon.
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// Number of cloudlets `m`.
    pub fn cloudlet_count(&self) -> usize {
        self.network.cloudlet_count()
    }

    /// Validates that a request stream can be scheduled against this
    /// instance: ids dense in arrival order, windows inside the horizon,
    /// VNF types present in the catalog.
    ///
    /// # Errors
    ///
    /// * [`VnfrelError::NonDenseRequestIds`] if ids do not equal positions.
    /// * [`VnfrelError::Workload`] for unknown VNF types or out-of-horizon
    ///   windows.
    pub fn check_requests(&self, requests: &[Request]) -> Result<(), VnfrelError> {
        for (i, r) in requests.iter().enumerate() {
            if r.id().index() != i {
                return Err(VnfrelError::NonDenseRequestIds {
                    position: i,
                    found: r.id().index(),
                });
            }
            self.catalog.require(r.vnf())?;
            if !self.horizon.contains_window(r.arrival(), r.duration()) {
                return Err(VnfrelError::Workload(
                    mec_workload::WorkloadError::WindowOutsideHorizon {
                        arrival: r.arrival(),
                        duration: r.duration(),
                        horizon: self.horizon.len(),
                    },
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ProblemInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} vnf types | {}",
            self.network,
            self.catalog.len(),
            self.horizon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Request, RequestId, VnfTypeId};

    fn network(with_cloudlet: bool) -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        if with_cloudlet {
            b.add_cloudlet(a, 10, Reliability::new(0.99).unwrap())
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn rejects_degenerate_instances() {
        let err = ProblemInstance::new(network(false), VnfCatalog::standard(), Horizon::new(5))
            .unwrap_err();
        assert!(matches!(err, VnfrelError::InvalidInstance(_)));
        let empty = VnfCatalog::from_specs(Vec::<(&str, u64, f64)>::new()).unwrap();
        let err = ProblemInstance::new(network(true), empty, Horizon::new(5)).unwrap_err();
        assert!(matches!(err, VnfrelError::InvalidInstance(_)));
    }

    #[test]
    fn accepts_and_exposes_parts() {
        let inst =
            ProblemInstance::new(network(true), VnfCatalog::standard(), Horizon::new(5)).unwrap();
        assert_eq!(inst.cloudlet_count(), 1);
        assert_eq!(inst.catalog().len(), 10);
        assert_eq!(inst.horizon().len(), 5);
        assert!(inst.to_string().contains("vnf types"));
        assert_eq!(Scheme::OnSite.to_string(), "on-site");
        assert_eq!(Scheme::OffSite.to_string(), "off-site");
    }

    #[test]
    fn check_requests_catches_bad_streams() {
        let inst =
            ProblemInstance::new(network(true), VnfCatalog::standard(), Horizon::new(5)).unwrap();
        let h = Horizon::new(5);
        let r = |id: usize, vnf: usize| {
            Request::new(
                RequestId(id),
                VnfTypeId(vnf),
                Reliability::new(0.9).unwrap(),
                0,
                2,
                1.0,
                h,
            )
            .unwrap()
        };
        assert!(inst.check_requests(&[r(0, 0), r(1, 3)]).is_ok());
        // Non-dense ids.
        assert!(matches!(
            inst.check_requests(&[r(1, 0)]),
            Err(VnfrelError::NonDenseRequestIds { .. })
        ));
        // Unknown VNF type.
        assert!(matches!(
            inst.check_requests(&[r(0, 42)]),
            Err(VnfrelError::Workload(_))
        ));
        // Window outside this instance's (shorter) horizon.
        let short =
            ProblemInstance::new(network(true), VnfCatalog::standard(), Horizon::new(1)).unwrap();
        assert!(matches!(
            short.check_requests(&[r(0, 0)]),
            Err(VnfrelError::Workload(_))
        ));
    }
}
