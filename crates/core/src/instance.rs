use std::fmt;

use mec_topology::{CloudletId, Network, Reliability};
use mec_workload::{Horizon, Request, VnfCatalog, VnfTypeId};

use crate::error::VnfrelError;
use crate::reliability::{offsite_ln_coefficient, onsite_availability, onsite_instances};

/// Which backup scheme a scheduler operates under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// All primary and backup instances of a request share one cloudlet.
    OnSite,
    /// At most one instance of a request per cloudlet.
    OffSite,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::OnSite => write!(f, "on-site"),
            Scheme::OffSite => write!(f, "off-site"),
        }
    }
}

/// A complete problem instance: the MEC network, the VNF catalog, and the
/// slotted monitoring horizon.
///
/// Requests are kept separate because the online algorithms consume them
/// as a stream; [`ProblemInstance::check_requests`] validates that a
/// stream is compatible with this instance.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    network: Network,
    catalog: VnfCatalog,
    horizon: Horizon,
    tables: ReliabilityTables,
}

/// Per-(VNF-type, cloudlet) reliability arithmetic, precomputed once at
/// instance construction so the online `decide()` hot path does no
/// `ln`/`ceil`/`powi` work per request.
///
/// * `ln_coef[v·m + j] = ln(1 − r(f_v)·r(c_j))` — the off-site
///   linearization coefficient (Eq. 44), bit-identical to computing it
///   per request since the inputs are the same;
/// * an *availability ladder* per (type, cloudlet): the on-site
///   availability `A(n) = r(c_j)·(1 − (1 − r(f_v))^n)` (Eq. 2) tabulated
///   for `n = 1, 2, …` until the residual failure mass `(1 − r_f)^n`
///   drops below f64 resolution. `N_ij` for a concrete requirement is a
///   short forward scan for the first rung meeting it — the minimal
///   replica count of Eq. 3 without any logarithms.
#[derive(Debug, Clone)]
struct ReliabilityTables {
    cloudlets: usize,
    /// `r(c_j)` per cloudlet, dense by id.
    cloudlet_rel: Vec<f64>,
    /// `ln(1 − r_f·r_c)` per `(vnf · m + cloudlet)`; always negative.
    ln_coef: Vec<f64>,
    /// CSR-style offsets into `ladder`: entry `v·m + j` spans
    /// `ladder[off[v·m + j] .. off[v·m + j + 1]]`.
    ladder_off: Vec<u32>,
    /// Concatenated availability ladders; entry `i` of a span is `A(i+1)`.
    ladder: Vec<f64>,
}

/// Hard cap on ladder length; requirements between the last rung and
/// `r(c_j)` fall back to the closed form of
/// [`onsite_instances`](crate::reliability::onsite_instances).
const MAX_LADDER: u32 = 64;

impl ReliabilityTables {
    fn build(network: &Network, catalog: &VnfCatalog) -> Self {
        let m = network.cloudlet_count();
        let cloudlet_rel: Vec<f64> = network
            .cloudlets()
            .map(|c| c.reliability().value())
            .collect();
        let n_types = catalog.len();
        let mut ln_coef = Vec::with_capacity(n_types * m);
        let mut ladder_off = Vec::with_capacity(n_types * m + 1);
        let mut ladder = Vec::new();
        ladder_off.push(0u32);
        for vnf in catalog.iter() {
            let rf = vnf.reliability();
            for cloudlet in network.cloudlets() {
                let rc = cloudlet.reliability();
                ln_coef.push(offsite_ln_coefficient(rf, rc));
                let mut n = 1u32;
                loop {
                    // Same powi-based arithmetic as `onsite_availability`
                    // so ladder rungs are bit-identical to the values the
                    // pre-table code compared against.
                    ladder.push(onsite_availability(rf, rc, n));
                    if rf.failure().powi(n as i32) < 1e-18 || n >= MAX_LADDER {
                        break;
                    }
                    n += 1;
                }
                ladder_off.push(ladder.len() as u32);
            }
        }
        ReliabilityTables {
            cloudlets: m,
            cloudlet_rel,
            ln_coef,
            ladder_off,
            ladder,
        }
    }
}

impl ProblemInstance {
    /// Bundles a network, catalog, and horizon into an instance.
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::InvalidInstance`] if the network has no
    /// cloudlets or the catalog is empty.
    pub fn new(
        network: Network,
        catalog: VnfCatalog,
        horizon: Horizon,
    ) -> Result<Self, VnfrelError> {
        if network.cloudlet_count() == 0 {
            return Err(VnfrelError::InvalidInstance("network has no cloudlets"));
        }
        if catalog.is_empty() {
            return Err(VnfrelError::InvalidInstance("vnf catalog is empty"));
        }
        let tables = ReliabilityTables::build(&network, &catalog);
        Ok(ProblemInstance {
            network,
            catalog,
            horizon,
            tables,
        })
    }

    /// Minimum on-site replica count `N_ij` (Eq. 3) for a request with
    /// requirement `req`, from the precomputed availability ladder:
    /// `None` when `r(c_j) ≤ R_i`, otherwise the first rung meeting the
    /// requirement. Agrees with
    /// [`onsite_instances`](crate::reliability::onsite_instances) but
    /// does no logarithm work.
    #[inline]
    pub fn onsite_instances_for(
        &self,
        vnf: VnfTypeId,
        cloudlet: CloudletId,
        req: Reliability,
    ) -> Option<u32> {
        let t = &self.tables;
        let j = cloudlet.index();
        let r = req.value();
        if t.cloudlet_rel[j] <= r {
            return None;
        }
        let k = vnf.index() * t.cloudlets + j;
        let lo = t.ladder_off[k] as usize;
        let hi = t.ladder_off[k + 1] as usize;
        for (i, &a) in t.ladder[lo..hi].iter().enumerate() {
            if a >= r {
                return Some(i as u32 + 1);
            }
        }
        // The requirement sits between the last tabulated rung and
        // r(c_j) (possible only for very failure-prone VNF types whose
        // ladder hit MAX_LADDER): use the closed form.
        let vnf_rel = self.catalog.get(vnf)?.reliability();
        let cloudlet_rel = self.network.cloudlet(cloudlet)?.reliability();
        onsite_instances(vnf_rel, cloudlet_rel, req)
    }

    /// Precomputed off-site linearization coefficient
    /// `ln(1 − r(f_v)·r(c_j))` (Eq. 44); always negative.
    #[inline]
    pub fn offsite_ln_coef(&self, vnf: VnfTypeId, cloudlet: CloudletId) -> f64 {
        self.tables.ln_coef[vnf.index() * self.tables.cloudlets + cloudlet.index()]
    }

    /// Precomputed cloudlet reliability `r(c_j)` by dense index.
    #[inline]
    pub fn cloudlet_reliability(&self, cloudlet: CloudletId) -> f64 {
        self.tables.cloudlet_rel[cloudlet.index()]
    }

    /// The MEC network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The VNF catalog.
    pub fn catalog(&self) -> &VnfCatalog {
        &self.catalog
    }

    /// The monitoring horizon.
    pub fn horizon(&self) -> Horizon {
        self.horizon
    }

    /// Number of cloudlets `m`.
    pub fn cloudlet_count(&self) -> usize {
        self.network.cloudlet_count()
    }

    /// Validates that a request stream can be scheduled against this
    /// instance: ids dense in arrival order, windows inside the horizon,
    /// VNF types present in the catalog.
    ///
    /// # Errors
    ///
    /// * [`VnfrelError::NonDenseRequestIds`] if ids do not equal positions.
    /// * [`VnfrelError::Workload`] for unknown VNF types or out-of-horizon
    ///   windows.
    pub fn check_requests(&self, requests: &[Request]) -> Result<(), VnfrelError> {
        for (i, r) in requests.iter().enumerate() {
            if r.id().index() != i {
                return Err(VnfrelError::NonDenseRequestIds {
                    position: i,
                    found: r.id().index(),
                });
            }
            self.catalog.require(r.vnf())?;
            if !self.horizon.contains_window(r.arrival(), r.duration()) {
                return Err(VnfrelError::Workload(
                    mec_workload::WorkloadError::WindowOutsideHorizon {
                        arrival: r.arrival(),
                        duration: r.duration(),
                        horizon: self.horizon.len(),
                    },
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ProblemInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} vnf types | {}",
            self.network,
            self.catalog.len(),
            self.horizon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Request, RequestId, VnfTypeId};

    fn network(with_cloudlet: bool) -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        if with_cloudlet {
            b.add_cloudlet(a, 10, Reliability::new(0.99).unwrap())
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn rejects_degenerate_instances() {
        let err = ProblemInstance::new(network(false), VnfCatalog::standard(), Horizon::new(5))
            .unwrap_err();
        assert!(matches!(err, VnfrelError::InvalidInstance(_)));
        let empty = VnfCatalog::from_specs(Vec::<(&str, u64, f64)>::new()).unwrap();
        let err = ProblemInstance::new(network(true), empty, Horizon::new(5)).unwrap_err();
        assert!(matches!(err, VnfrelError::InvalidInstance(_)));
    }

    #[test]
    fn accepts_and_exposes_parts() {
        let inst =
            ProblemInstance::new(network(true), VnfCatalog::standard(), Horizon::new(5)).unwrap();
        assert_eq!(inst.cloudlet_count(), 1);
        assert_eq!(inst.catalog().len(), 10);
        assert_eq!(inst.horizon().len(), 5);
        assert!(inst.to_string().contains("vnf types"));
        assert_eq!(Scheme::OnSite.to_string(), "on-site");
        assert_eq!(Scheme::OffSite.to_string(), "off-site");
    }

    #[test]
    fn check_requests_catches_bad_streams() {
        let inst =
            ProblemInstance::new(network(true), VnfCatalog::standard(), Horizon::new(5)).unwrap();
        let h = Horizon::new(5);
        let r = |id: usize, vnf: usize| {
            Request::new(
                RequestId(id),
                VnfTypeId(vnf),
                Reliability::new(0.9).unwrap(),
                0,
                2,
                1.0,
                h,
            )
            .unwrap()
        };
        assert!(inst.check_requests(&[r(0, 0), r(1, 3)]).is_ok());
        // Non-dense ids.
        assert!(matches!(
            inst.check_requests(&[r(1, 0)]),
            Err(VnfrelError::NonDenseRequestIds { .. })
        ));
        // Unknown VNF type.
        assert!(matches!(
            inst.check_requests(&[r(0, 42)]),
            Err(VnfrelError::Workload(_))
        ));
        // Window outside this instance's (shorter) horizon.
        let short =
            ProblemInstance::new(network(true), VnfCatalog::standard(), Horizon::new(1)).unwrap();
        assert!(matches!(
            short.check_requests(&[r(0, 0)]),
            Err(VnfrelError::Workload(_))
        ));
    }

    /// Builds an instance whose cloudlets have the given reliabilities.
    fn instance_with(rels: &[f64], catalog: VnfCatalog) -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        for (i, &r) in rels.iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            b.add_cloudlet(ap, 10, Reliability::new(r).unwrap())
                .unwrap();
        }
        ProblemInstance::new(b.build().unwrap(), catalog, Horizon::new(4)).unwrap()
    }

    #[test]
    fn tables_match_closed_forms_on_standard_catalog() {
        use crate::reliability::{offsite_ln_coefficient, onsite_instances};
        let inst = instance_with(&[0.95, 0.99, 0.999, 0.9999], VnfCatalog::standard());
        for vnf in inst.catalog().iter() {
            for c in inst.network().cloudlets() {
                assert_eq!(
                    inst.offsite_ln_coef(vnf.id(), c.id()),
                    offsite_ln_coefficient(vnf.reliability(), c.reliability()),
                    "ln_coef table must be bit-identical"
                );
                for req in [0.9, 0.93, 0.95, 0.97, 0.99, 0.995, 0.9989] {
                    let req = Reliability::new(req).unwrap();
                    assert_eq!(
                        inst.onsite_instances_for(vnf.id(), c.id(), req),
                        onsite_instances(vnf.reliability(), c.reliability(), req),
                        "ladder lookup must agree with the closed form \
                         (vnf {:?}, cloudlet {:?}, req {})",
                        vnf.id(),
                        c.id(),
                        req.value()
                    );
                }
            }
        }
    }

    #[test]
    fn ladder_fallback_handles_failure_prone_vnfs() {
        use crate::reliability::onsite_instances;
        // A VNF with r_f = 0.3 needs a long ladder: (1 − 0.3)^64 ≈ 1e-10
        // is still above the 1e-18 cutoff, so MAX_LADDER truncates it and
        // requirements beyond the last rung exercise the closed-form
        // fallback.
        let catalog = VnfCatalog::from_specs(vec![("Flaky", 1u64, 0.3f64)]).unwrap();
        let inst = instance_with(&[0.999999], catalog);
        let vnf = inst.catalog().iter().next().unwrap();
        let c = CloudletId(0);
        for req in [0.5, 0.9, 0.99, 0.9999, 0.99999, 0.999998] {
            let req = Reliability::new(req).unwrap();
            assert_eq!(
                inst.onsite_instances_for(vnf.id(), c, req),
                onsite_instances(
                    vnf.reliability(),
                    inst.network().cloudlet(c).unwrap().reliability(),
                    req
                ),
                "fallback must agree with the closed form at req {}",
                req.value()
            );
        }
    }

    proptest::proptest! {
        /// The availability-ladder lookup agrees with the closed-form
        /// `onsite_instances` across the realistic parameter space.
        #[test]
        fn ladder_matches_closed_form(
            rc in 0.5f64..0.99999,
            req in 0.5f64..0.999,
            vnf_idx in 0usize..10,
        ) {
            use crate::reliability::onsite_instances;
            let inst = instance_with(&[rc], VnfCatalog::standard());
            let vnf = inst.catalog().iter().nth(vnf_idx).unwrap();
            let req = Reliability::new(req).unwrap();
            let got = inst.onsite_instances_for(vnf.id(), CloudletId(0), req);
            let want = onsite_instances(
                vnf.reliability(),
                inst.network().cloudlet(CloudletId(0)).unwrap().reliability(),
                req,
            );
            proptest::prop_assert_eq!(got, want);
        }
    }
}
