//! Reliability-aware VNF service scheduling for Mobile Edge Computing.
//!
//! A Rust reproduction of Li, Liang, Huang & Jia, *"Providing
//! Reliability-Aware Virtualized Network Function Services for Mobile Edge
//! Computing"* (ICDCS 2019). Mobile users request VNF services with
//! individual reliability requirements; the provider places primary and
//! backup VNF instances in capacity-constrained cloudlets to maximize the
//! revenue of admitted requests.
//!
//! Two backup schemes are modeled:
//!
//! * **on-site** — all instances of a request share one cloudlet; the
//!   cloudlet's own reliability caps what is achievable
//!   ([`reliability::onsite_instances`]),
//! * **off-site** — one instance per chosen cloudlet, independent
//!   failures ([`reliability::offsite_availability`]).
//!
//! Schedulers (all implementing [`OnlineScheduler`]):
//!
//! | Scheduler | Paper artefact |
//! |---|---|
//! | [`onsite::OnsitePrimalDual`] | Algorithm 1, `(1 + a_max)`-competitive |
//! | [`onsite::OnsiteGreedy`] | Section VI greedy baseline |
//! | [`onsite::offline`] | ILP (6)–(8) via branch-and-bound (CPLEX substitute) |
//! | [`offsite::OffsitePrimalDual`] | Algorithm 2 |
//! | [`offsite::OffsiteGreedy`] | Section VI greedy baseline |
//! | [`offsite::offline`] | ln-transformed ILP (48)–(53) |
//!
//! [`bounds::OnsiteBounds`] evaluates the proved competitive ratio and the
//! violation bound `ξ` for a concrete workload, and
//! [`validate_schedule`] independently re-checks any schedule.
//!
//! # Quick start
//!
//! ```
//! use vnfrel::{ProblemInstance, run_online};
//! use vnfrel::onsite::{OnsitePrimalDual, CapacityPolicy};
//! use mec_topology::{NetworkBuilder, Reliability};
//! use mec_workload::{VnfCatalog, RequestGenerator, Horizon};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetworkBuilder::new();
//! let ap = b.add_ap("edge-1");
//! b.add_cloudlet(ap, 100, Reliability::new(0.999)?)?;
//! let instance = ProblemInstance::new(b.build()?, VnfCatalog::standard(), Horizon::new(24))?;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let requests = RequestGenerator::new(instance.horizon())
//!     .generate(40, instance.catalog(), &mut rng)?;
//!
//! let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce)?;
//! let schedule = run_online(&mut alg1, &requests)?;
//! println!("revenue: {:.2}", schedule.revenue());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod bounds;
pub mod chain;
mod error;
mod instance;
mod ledger;
pub mod offsite;
pub mod onsite;
pub mod pricing;
pub mod reliability;
mod schedule;
mod scheduler;
mod validate;

pub use error::VnfrelError;
pub use instance::{ProblemInstance, Scheme};
pub use ledger::CapacityLedger;
pub use pricing::DualPrices;
pub use schedule::{Decision, Placement, Schedule};
pub use scheduler::{run_online, OnlineScheduler, SchedulerState};
pub use validate::{validate_schedule, ValidationReport, Violation};
