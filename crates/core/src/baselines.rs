//! Additional baseline schedulers beyond the paper's greedy.
//!
//! These are not part of the paper's evaluation; they bracket the design
//! space in the ablation benches:
//!
//! * [`RandomPlacement`] — admits whenever *some* feasible placement
//!   exists, chosen uniformly at random; a floor on achievable revenue.
//! * [`DensityGreedy`] — greedy by *payment density* (payment per
//!   consumed unit-slot) with an admission threshold; payment-aware like
//!   Algorithm 1 but without dual prices, isolating how much of
//!   Algorithm 1's advantage comes from price dynamics versus from simply
//!   looking at payments.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mec_topology::CloudletId;
use mec_workload::Request;

use crate::instance::{ProblemInstance, Scheme};
use crate::ledger::CapacityLedger;
use crate::reliability::{offsite_ln_coefficient, onsite_instances};
use crate::schedule::{Decision, Placement};
use crate::scheduler::OnlineScheduler;

/// Uniform-random feasible placement (see module docs).
#[derive(Debug)]
pub struct RandomPlacement<'a> {
    instance: &'a ProblemInstance,
    scheme: Scheme,
    ledger: CapacityLedger,
    rng: ChaCha8Rng,
}

impl<'a> RandomPlacement<'a> {
    /// Creates the scheduler with its own seeded RNG.
    pub fn new(instance: &'a ProblemInstance, scheme: Scheme, seed: u64) -> Self {
        RandomPlacement {
            instance,
            scheme,
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn decide_onsite(&mut self, request: &Request) -> Decision {
        let Some(vnf) = self.instance.catalog().get(request.vnf()) else {
            return Decision::Reject;
        };
        // Collect all feasible cloudlets, pick one uniformly.
        let mut feasible = Vec::new();
        for cloudlet in self.instance.network().cloudlets() {
            if let Some(n) = onsite_instances(
                vnf.reliability(),
                cloudlet.reliability(),
                request.reliability_requirement(),
            ) {
                let weight = f64::from(n) * vnf.compute() as f64;
                if self.ledger.fits(cloudlet.id(), request.slots(), weight) {
                    feasible.push((cloudlet.id(), n, weight));
                }
            }
        }
        if feasible.is_empty() {
            return Decision::Reject;
        }
        let (cid, n, weight) = feasible[self.rng.gen_range(0..feasible.len())];
        self.ledger.charge(cid, request.slots(), weight);
        Decision::Admit(Placement::OnSite {
            cloudlet: cid,
            instances: n,
        })
    }

    fn decide_offsite(&mut self, request: &Request) -> Decision {
        let Some(vnf) = self.instance.catalog().get(request.vnf()) else {
            return Decision::Reject;
        };
        let compute = vnf.compute() as f64;
        let ln_target = request.reliability_requirement().failure().ln();
        // Random order over cloudlets with capacity; accumulate until the
        // target is met.
        let mut order: Vec<CloudletId> = self
            .instance
            .network()
            .cloudlets()
            .map(|c| c.id())
            .filter(|&c| self.ledger.fits(c, request.slots(), compute))
            .collect();
        // Fisher–Yates shuffle with the scheduler's RNG.
        for i in (1..order.len()).rev() {
            order.swap(i, self.rng.gen_range(0..=i));
        }
        let mut selected = Vec::new();
        let mut ln_sum = 0.0;
        for cid in order {
            let cloudlet = self.instance.network().cloudlet(cid).expect("valid id");
            ln_sum += offsite_ln_coefficient(vnf.reliability(), cloudlet.reliability());
            selected.push(cid);
            if ln_sum <= ln_target + 1e-12 {
                break;
            }
        }
        if ln_sum > ln_target + 1e-12 {
            return Decision::Reject;
        }
        for &cid in &selected {
            self.ledger.charge(cid, request.slots(), compute);
        }
        Decision::Admit(Placement::OffSite {
            cloudlets: selected,
        })
    }
}

impl OnlineScheduler for RandomPlacement<'_> {
    fn name(&self) -> &'static str {
        match self.scheme {
            Scheme::OnSite => "random-onsite",
            Scheme::OffSite => "random-offsite",
        }
    }

    fn scheme(&self) -> Scheme {
        self.scheme
    }

    fn decide(&mut self, request: &Request) -> Decision {
        match self.scheme {
            Scheme::OnSite => self.decide_onsite(request),
            Scheme::OffSite => self.decide_offsite(request),
        }
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

/// Payment-density greedy (on-site): admits a request only if its payment
/// per consumed unit-slot clears `threshold`, placing it in the eligible
/// cloudlet where it consumes the least capacity (see module docs).
#[derive(Debug)]
pub struct DensityGreedy<'a> {
    instance: &'a ProblemInstance,
    threshold: f64,
    ledger: CapacityLedger,
}

impl<'a> DensityGreedy<'a> {
    /// Creates the scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::InvalidParameter`](crate::VnfrelError) for a
    /// negative or non-finite threshold.
    pub fn new(instance: &'a ProblemInstance, threshold: f64) -> Result<Self, crate::VnfrelError> {
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(crate::VnfrelError::InvalidParameter(
                "density threshold must be a non-negative finite number",
            ));
        }
        Ok(DensityGreedy {
            instance,
            threshold,
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
        })
    }
}

impl OnlineScheduler for DensityGreedy<'_> {
    fn name(&self) -> &'static str {
        "density-greedy-onsite"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OnSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let Some(vnf) = self.instance.catalog().get(request.vnf()) else {
            return Decision::Reject;
        };
        // Cheapest feasible placement = fewest total unit-slots.
        let mut best: Option<(CloudletId, u32, f64)> = None;
        for cloudlet in self.instance.network().cloudlets() {
            if let Some(n) = onsite_instances(
                vnf.reliability(),
                cloudlet.reliability(),
                request.reliability_requirement(),
            ) {
                let weight = f64::from(n) * vnf.compute() as f64;
                if !self.ledger.fits(cloudlet.id(), request.slots(), weight) {
                    continue;
                }
                match best {
                    Some((_, _, w)) if w <= weight => {}
                    _ => best = Some((cloudlet.id(), n, weight)),
                }
            }
        }
        let Some((cid, n, weight)) = best else {
            return Decision::Reject;
        };
        let unit_slots = weight * request.duration() as f64;
        if request.payment() / unit_slots < self.threshold {
            return Decision::Reject;
        }
        self.ledger.charge(cid, request.slots(), weight);
        Decision::Admit(Placement::OnSite {
            cloudlet: cid,
            instances: n,
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::run_online;
    use crate::validate::validate_schedule;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestGenerator, VnfCatalog};

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, r) in [0.999, 0.995, 0.99].iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, 12, Reliability::new(*r).unwrap())
                .unwrap();
        }
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(12)).unwrap()
    }

    fn workload(inst: &ProblemInstance, n: usize, seed: u64) -> Vec<Request> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        RequestGenerator::new(inst.horizon())
            .reliability_band(0.9, 0.95)
            .unwrap()
            .payment_rate_band(1.0, 10.0)
            .unwrap()
            .generate(n, inst.catalog(), &mut rng)
            .unwrap()
    }

    #[test]
    fn random_onsite_is_feasible_and_deterministic_per_seed() {
        let inst = instance();
        let reqs = workload(&inst, 100, 1);
        let mut a = RandomPlacement::new(&inst, Scheme::OnSite, 7);
        let sa = run_online(&mut a, &reqs).unwrap();
        let rep = validate_schedule(&inst, &reqs, &sa, Scheme::OnSite).unwrap();
        assert!(rep.is_feasible(), "{:?}", rep.violations);
        let mut b = RandomPlacement::new(&inst, Scheme::OnSite, 7);
        let sb = run_online(&mut b, &reqs).unwrap();
        assert_eq!(sa, sb);
        // A different seed should normally differ.
        let mut c = RandomPlacement::new(&inst, Scheme::OnSite, 8);
        let sc = run_online(&mut c, &reqs).unwrap();
        assert!(sa != sc || sa.admitted_count() == 0);
    }

    #[test]
    fn random_offsite_is_feasible() {
        let inst = instance();
        let reqs = workload(&inst, 100, 2);
        let mut a = RandomPlacement::new(&inst, Scheme::OffSite, 3);
        let s = run_online(&mut a, &reqs).unwrap();
        let rep = validate_schedule(&inst, &reqs, &s, Scheme::OffSite).unwrap();
        assert!(rep.is_feasible(), "{:?}", rep.violations);
        assert!(s.admitted_count() > 0);
    }

    #[test]
    fn density_greedy_thresholds_low_payers() {
        let inst = instance();
        let reqs = workload(&inst, 150, 3);
        let mut permissive = DensityGreedy::new(&inst, 0.0).unwrap();
        let sp = run_online(&mut permissive, &reqs).unwrap();
        let mut strict = DensityGreedy::new(&inst, 5.0).unwrap();
        let ss = run_online(&mut strict, &reqs).unwrap();
        // NOTE: strict may admit *more* requests in total than permissive
        // (rejecting low-payers keeps capacity free for later arrivals),
        // so total admitted counts are not comparable. The invariant is
        // that the strict run never admits below the threshold while the
        // permissive run stays feasible and non-trivial.
        assert!(sp.admitted_count() > 0);
        let density = |r: &Request, p: &Placement| {
            // compute_per_slot takes per-instance demand; reconstruct
            // the density the scheduler used.
            let units = p.compute_per_slot(inst.catalog().get(r.vnf()).unwrap().compute());
            r.payment() / (units as f64 * r.duration() as f64)
        };
        // All admitted requests in the strict run clear the threshold.
        for r in &reqs {
            if let Some(p) = ss.placement(r.id()) {
                let d = density(r, p);
                assert!(d + 1e-9 >= 5.0, "density {d} below threshold");
            }
        }
        let rep = validate_schedule(&inst, &reqs, &sp, Scheme::OnSite).unwrap();
        assert!(rep.is_feasible());
    }

    #[test]
    fn density_greedy_rejects_bad_threshold() {
        let inst = instance();
        assert!(DensityGreedy::new(&inst, -1.0).is_err());
        assert!(DensityGreedy::new(&inst, f64::NAN).is_err());
    }

    #[test]
    fn density_greedy_picks_cheapest_cloudlet() {
        // The most reliable cloudlet needs fewer replicas, so density
        // greedy places there first (same as reliability order when
        // replica counts differ).
        let inst = instance();
        let reqs = workload(&inst, 10, 4);
        let mut g = DensityGreedy::new(&inst, 0.0).unwrap();
        let s = run_online(&mut g, &reqs).unwrap();
        assert!(s.admitted_count() > 0);
    }
}
