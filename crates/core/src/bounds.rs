//! Theoretical guarantees of Algorithm 1 — the competitive ratio
//! `1 + a_max` (Theorem 1) and the capacity-violation bound `ξ` (Lemma 8),
//! computed from a concrete instance + request stream so experiments can
//! compare observed behaviour against the proved bounds.

use mec_workload::Request;

use crate::error::VnfrelError;
use crate::instance::ProblemInstance;
use crate::reliability::onsite_instances;

/// The quantities of Theorem 1 / Lemma 8 for one instance + workload.
#[derive(Debug, Clone, PartialEq)]
pub struct OnsiteBounds {
    /// `a_max = max_{i,j} N_ij·c(f_i)` over eligible (request, cloudlet)
    /// pairs.
    pub a_max: f64,
    /// `a_min = min_{i,j} N_ij·c(f_i)`.
    pub a_min: f64,
    /// Maximum payment among requests.
    pub pay_max: f64,
    /// Minimum payment among requests.
    pub pay_min: f64,
    /// Maximum request duration in slots.
    pub d_max: f64,
    /// Minimum request duration in slots.
    pub d_min: f64,
    /// Maximum cloudlet capacity.
    pub cap_max: f64,
    /// Minimum cloudlet capacity.
    pub cap_min: f64,
}

impl OnsiteBounds {
    /// Computes the bound ingredients.
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::InvalidParameter`] when no (request,
    /// cloudlet) pair is eligible — the bounds are undefined for a
    /// workload that can never be served.
    pub fn compute(instance: &ProblemInstance, requests: &[Request]) -> Result<Self, VnfrelError> {
        let mut a_max = f64::MIN;
        let mut a_min = f64::MAX;
        let mut pay_max = f64::MIN;
        let mut pay_min = f64::MAX;
        let mut d_max = f64::MIN;
        let mut d_min = f64::MAX;
        for r in requests {
            let vnf = instance.catalog().require(r.vnf())?;
            pay_max = pay_max.max(r.payment());
            pay_min = pay_min.min(r.payment());
            d_max = d_max.max(r.duration() as f64);
            d_min = d_min.min(r.duration() as f64);
            for cloudlet in instance.network().cloudlets() {
                if let Some(n) = onsite_instances(
                    vnf.reliability(),
                    cloudlet.reliability(),
                    r.reliability_requirement(),
                ) {
                    let a = f64::from(n) * vnf.compute() as f64;
                    a_max = a_max.max(a);
                    a_min = a_min.min(a);
                }
            }
        }
        if a_max == f64::MIN {
            return Err(VnfrelError::InvalidParameter(
                "no eligible (request, cloudlet) pair",
            ));
        }
        let cap_max = instance
            .network()
            .cloudlets()
            .map(|c| c.capacity() as f64)
            .fold(f64::MIN, f64::max);
        let cap_min = instance
            .network()
            .cloudlets()
            .map(|c| c.capacity() as f64)
            .fold(f64::MAX, f64::min);
        Ok(OnsiteBounds {
            a_max,
            a_min,
            pay_max,
            pay_min,
            d_max,
            d_min,
            cap_max,
            cap_min,
        })
    }

    /// The competitive ratio `1 + a_max` of Theorem 1.
    pub fn competitive_ratio(&self) -> f64 {
        1.0 + self.a_max
    }

    /// The capacity-violation bound `ξ` of Lemma 8, expressed in computing
    /// units (the per-(slot, cloudlet) load of the raw Algorithm 1 never
    /// exceeds this).
    pub fn xi(&self) -> f64 {
        let inner = self.pay_max * self.d_max / self.pay_min
            * (1.0 / self.a_min
                + self.a_max / (self.a_min * self.cap_min)
                + self.a_max / (self.d_min * self.cap_min))
            + 1.0;
        self.a_max / (self.cap_min * (1.0 + self.a_min / self.cap_max).log2()) * inner.log2()
    }

    /// `ξ` relative to the smallest capacity — an upper bound on the
    /// ledger's [`max_overflow`](crate::CapacityLedger::max_overflow)
    /// style relative violation.
    pub fn xi_relative(&self) -> f64 {
        self.xi() / self.cap_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestId, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        b.add_link(a, c, 1.0).unwrap();
        b.add_cloudlet(a, 50, rel(0.999)).unwrap();
        b.add_cloudlet(c, 100, rel(0.995)).unwrap();
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(10)).unwrap()
    }

    fn request(id: usize, vnf: usize, pay: f64, dur: usize) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(vnf),
            rel(0.9),
            0,
            dur,
            pay,
            Horizon::new(10),
        )
        .unwrap()
    }

    #[test]
    fn bounds_ordering_invariants() {
        let inst = instance();
        let reqs = vec![
            request(0, 0, 4.0, 2),
            request(1, 2, 9.0, 5),
            request(2, 8, 1.0, 1),
        ];
        let b = OnsiteBounds::compute(&inst, &reqs).unwrap();
        assert!(b.a_max >= b.a_min && b.a_min > 0.0);
        assert!(b.pay_max >= b.pay_min);
        assert!(b.d_max >= b.d_min);
        assert!(b.cap_max >= b.cap_min);
        assert_eq!(b.cap_max, 100.0);
        assert_eq!(b.cap_min, 50.0);
        assert!(b.competitive_ratio() > 1.0);
        assert!(b.xi() > 0.0);
        assert!(b.xi_relative() > 0.0);
    }

    #[test]
    fn a_values_reflect_replica_counts() {
        let inst = instance();
        // IDS (vnf 2): compute 3, r = 0.9 → multiple replicas needed at
        // req 0.9 with cloudlet 0.995 … a = N·3 ≥ 6.
        let reqs = vec![request(0, 2, 5.0, 1)];
        let b = OnsiteBounds::compute(&inst, &reqs).unwrap();
        assert!(b.a_max >= 6.0, "a_max {}", b.a_max);
    }

    #[test]
    fn no_eligible_pair_is_an_error() {
        let mut bld = NetworkBuilder::new();
        let a = bld.add_ap("a");
        bld.add_cloudlet(a, 10, rel(0.91)).unwrap();
        let inst = ProblemInstance::new(
            bld.build().unwrap(),
            VnfCatalog::standard(),
            Horizon::new(10),
        )
        .unwrap();
        let r = Request::new(
            RequestId(0),
            VnfTypeId(0),
            rel(0.95),
            0,
            1,
            1.0,
            Horizon::new(10),
        )
        .unwrap();
        assert!(matches!(
            OnsiteBounds::compute(&inst, &[r]),
            Err(VnfrelError::InvalidParameter(_))
        ));
    }

    #[test]
    fn xi_grows_with_payment_spread() {
        let inst = instance();
        let tight =
            OnsiteBounds::compute(&inst, &[request(0, 1, 5.0, 2), request(1, 1, 5.0, 2)]).unwrap();
        let wide =
            OnsiteBounds::compute(&inst, &[request(0, 1, 50.0, 2), request(1, 1, 0.5, 2)]).unwrap();
        assert!(wide.xi() > tight.xi());
    }
}
