//! Flat dual-price storage with per-cloudlet prefix sums.
//!
//! Both primal-dual schedulers maintain one dual price `λ_{tj}` per
//! (slot, cloudlet) and repeatedly need the window sum
//! `Σ_{t ∈ [a_i, d_i]} λ_{tj}` for *every* cloudlet on *every* arrival.
//! [`DualPrices`] stores the grid row-major (one contiguous row per
//! cloudlet) and maintains, per row, the exclusive prefix sums
//! `P_j[s] = Σ_{u < s} λ_{uj}`, so a window sum is two loads and a
//! subtraction — O(1) per cloudlet instead of O(|window|).
//!
//! Admission touches exactly the chosen cloudlets' windows, so each
//! affected prefix row is rebuilt in O(T) (T = horizon length) while
//! every untouched row stays valid.
//!
//! The prefix rows are accumulated strictly left-to-right, which makes
//! [`DualPrices::row_total`] bit-identical to the naive
//! `row.iter().sum::<f64>()` the schedulers used before this layout
//! existed; window sums differ from a naive per-slot loop only by float
//! re-association (verified to a 1e-9 relative bound by the property
//! tests below).

/// Dual prices `λ[cloudlet][slot]` in contiguous row-major storage, with
/// per-cloudlet prefix sums for O(1) window queries.
#[derive(Debug, Clone, PartialEq)]
pub struct DualPrices {
    cloudlets: usize,
    slots: usize,
    /// `lambda[j * slots + t]` = `λ_{tj}`.
    lambda: Vec<f64>,
    /// `prefix[j * (slots + 1) + s]` = `Σ_{u < s} λ_{uj}`.
    prefix: Vec<f64>,
}

impl DualPrices {
    /// All-zero prices for `cloudlets × slots`.
    pub fn new(cloudlets: usize, slots: usize) -> Self {
        DualPrices {
            cloudlets,
            slots,
            lambda: vec![0.0; cloudlets * slots],
            prefix: vec![0.0; cloudlets * (slots + 1)],
        }
    }

    /// Number of cloudlet rows.
    #[inline]
    pub fn cloudlet_count(&self) -> usize {
        self.cloudlets
    }

    /// Number of slots per row.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The price `λ_{tj}`.
    #[inline]
    pub fn get(&self, cloudlet: usize, slot: usize) -> f64 {
        self.lambda[cloudlet * self.slots + slot]
    }

    /// `Σ_{t ∈ [first, last]} λ_{tj}` (inclusive window) in O(1).
    #[inline]
    pub fn window_sum(&self, cloudlet: usize, first: usize, last: usize) -> f64 {
        debug_assert!(first <= last && last < self.slots);
        let base = cloudlet * (self.slots + 1);
        self.prefix[base + last + 1] - self.prefix[base + first]
    }

    /// Total `Σ_t λ_{tj}` of one row — bit-identical to summing the row
    /// left to right.
    #[inline]
    pub fn row_total(&self, cloudlet: usize) -> f64 {
        self.prefix[cloudlet * (self.slots + 1) + self.slots]
    }

    /// The full `λ` grid in row-major `lambda[cloudlet * slots + slot]`
    /// order — the complete mutable state of the structure (the prefix
    /// sums are derived). Used by snapshot/restore in `mec-serve`.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.lambda
    }

    /// Replaces the `λ` grid with `values` and rebuilds every prefix row.
    ///
    /// Prefix rows are accumulated strictly left-to-right, exactly as
    /// incremental [`DualPrices::update_window`] calls would have left
    /// them (positions below an update's window keep their previously
    /// accumulated values, which are themselves left-to-right folds of
    /// unchanged prices) — so a restore from [`DualPrices::values`] is
    /// bit-identical to the live structure and subsequent decisions
    /// reproduce the original stream byte for byte.
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::StateRestore`](crate::VnfrelError) when
    /// `values` has the wrong length or holds a non-finite price.
    pub fn restore(&mut self, values: &[f64]) -> Result<(), crate::VnfrelError> {
        if values.len() != self.lambda.len() {
            return Err(crate::VnfrelError::StateRestore(
                "dual-price grid length mismatch",
            ));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(crate::VnfrelError::StateRestore(
                "non-finite dual price in snapshot",
            ));
        }
        self.lambda.copy_from_slice(values);
        for j in 0..self.cloudlets {
            let base = j * self.slots;
            let pbase = j * (self.slots + 1);
            let mut acc = 0.0;
            self.prefix[pbase] = 0.0;
            for t in 0..self.slots {
                acc += self.lambda[base + t];
                self.prefix[pbase + t + 1] = acc;
            }
        }
        Ok(())
    }

    /// Applies `f` to `λ_{tj}` for `t ∈ [first, last]` on one cloudlet
    /// row, then rebuilds that row's prefix sums in O(T).
    #[inline]
    pub fn update_window<F>(&mut self, cloudlet: usize, first: usize, last: usize, mut f: F)
    where
        F: FnMut(f64) -> f64,
    {
        debug_assert!(first <= last && last < self.slots);
        let base = cloudlet * self.slots;
        for l in &mut self.lambda[base + first..=base + last] {
            *l = f(*l);
        }
        let pbase = cloudlet * (self.slots + 1);
        let mut acc = self.prefix[pbase + first];
        for t in first..self.slots {
            acc += self.lambda[base + t];
            self.prefix[pbase + t + 1] = acc;
        }
    }
}

/// Lazily yields candidate indices in ascending `(key, index)` order.
///
/// Replaces a full `sort` of the candidate list with
/// `select_nth_unstable`-style partial selection: keys are partitioned
/// and sorted one small block at a time, so a consumer that stops after
/// the cheapest feasible prefix (the common case — most requests admit
/// on the first candidate or reject quickly) never pays for ordering the
/// rest of the list.
#[derive(Debug)]
pub(crate) struct CheapestFirst<'a> {
    keys: &'a mut Vec<(f64, u32)>,
    /// Keys in `..sorted` are in their final ascending order.
    sorted: usize,
    cursor: usize,
}

/// How many candidates each partial-selection step orders.
const SELECT_BLOCK: usize = 8;

/// Below this size each `next()` does a straight min-scan instead of any
/// partitioning: for the handful of cloudlets in a typical MEC topology
/// one O(m) scan beats even one block sort, and the common consumer
/// stops after a single candidate.
const SCAN_THRESHOLD: usize = 32;

impl<'a> CheapestFirst<'a> {
    #[inline]
    pub(crate) fn new(keys: &'a mut Vec<(f64, u32)>) -> Self {
        CheapestFirst {
            keys,
            sorted: 0,
            cursor: 0,
        }
    }

    /// Index (the `u32` payload) of the next-cheapest candidate.
    #[inline]
    pub(crate) fn next(&mut self) -> Option<u32> {
        if self.cursor >= self.keys.len() {
            return None;
        }
        if self.keys.len() <= SCAN_THRESHOLD {
            // Selection by min-scan: move the cheapest remaining key to
            // the cursor slot. Identical (key, index) order to a full
            // sort, paid one candidate at a time.
            let mut min = self.cursor;
            for i in self.cursor + 1..self.keys.len() {
                let (a, b) = (self.keys[i], self.keys[min]);
                if a.0 < b.0 || (a.0 == b.0 && a.1 < b.1) {
                    min = i;
                }
            }
            self.keys.swap(self.cursor, min);
        } else if self.cursor == self.sorted {
            let cmp = |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
            let tail = &mut self.keys[self.sorted..];
            let step = SELECT_BLOCK.min(tail.len());
            if step < tail.len() {
                tail.select_nth_unstable_by(step - 1, cmp);
            }
            tail[..step].sort_unstable_by(cmp);
            self.sorted += step;
        }
        let idx = self.keys[self.cursor].1;
        self.cursor += 1;
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-optimization reference: a naive per-slot sum over a
    /// `Vec<Vec<f64>>` grid, kept to pin the prefix-sum fast path.
    fn naive_window_sum(grid: &[Vec<f64>], j: usize, first: usize, last: usize) -> f64 {
        (first..=last).map(|t| grid[j][t]).sum()
    }

    fn mirrored(prices: &DualPrices) -> Vec<Vec<f64>> {
        (0..prices.cloudlet_count())
            .map(|j| (0..prices.slots()).map(|t| prices.get(j, t)).collect())
            .collect()
    }

    #[test]
    fn window_sum_matches_naive_after_updates() {
        let mut p = DualPrices::new(3, 16);
        // A deterministic pseudo-random update/query schedule.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let j = (next() % 3) as usize;
            let a = (next() % 16) as usize;
            let d = a + (next() as usize % (16 - a));
            let w = (next() % 1000) as f64 / 100.0;
            p.update_window(j, a, d, |l| l * (1.0 + w / 10.0) + w);
            let grid = mirrored(&p);
            for jj in 0..3 {
                for first in 0..16 {
                    for last in first..16 {
                        let fast = p.window_sum(jj, first, last);
                        let naive = naive_window_sum(&grid, jj, first, last);
                        let tol = 1e-9 * naive.abs().max(1.0);
                        assert!(
                            (fast - naive).abs() <= tol,
                            "window [{first},{last}] cloudlet {jj}: {fast} vs {naive}"
                        );
                    }
                }
                // Row totals are accumulated exactly like iter().sum().
                let total: f64 = grid[jj].iter().sum();
                assert_eq!(p.row_total(jj), total);
            }
        }
    }

    #[test]
    fn update_window_touches_only_the_window() {
        let mut p = DualPrices::new(2, 8);
        p.update_window(1, 2, 4, |_| 5.0);
        for t in 0..8 {
            assert_eq!(p.get(0, t), 0.0);
            let expect = if (2..=4).contains(&t) { 5.0 } else { 0.0 };
            assert_eq!(p.get(1, t), expect);
        }
        assert_eq!(p.window_sum(1, 0, 7), 15.0);
        assert_eq!(p.window_sum(1, 5, 7), 0.0);
    }

    #[test]
    fn cheapest_first_yields_full_ascending_order() {
        let mut keys: Vec<(f64, u32)> = vec![
            (3.0, 0),
            (1.0, 1),
            (2.0, 2),
            (1.0, 3),
            (0.5, 4),
            (9.0, 5),
            (0.5, 6),
            (4.0, 7),
            (8.0, 8),
            (7.0, 9),
            (6.0, 10),
            (5.0, 11),
        ];
        let mut expect: Vec<(f64, u32)> = keys.clone();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        let mut it = CheapestFirst::new(&mut keys);
        while let Some(i) = it.next() {
            got.push(i);
        }
        let expect: Vec<u32> = expect.into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, expect, "ties must break toward the lower index");
    }

    #[test]
    fn cheapest_first_handles_empty_and_single() {
        let mut keys: Vec<(f64, u32)> = Vec::new();
        assert_eq!(CheapestFirst::new(&mut keys).next(), None);
        let mut keys = vec![(1.5, 7)];
        let mut it = CheapestFirst::new(&mut keys);
        assert_eq!(it.next(), Some(7));
        assert_eq!(it.next(), None);
    }
}
