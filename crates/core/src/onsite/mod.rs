//! Schedulers for the VNF service reliability problem under the
//! **on-site** backup scheme (all instances of a request share one
//! cloudlet).
//!
//! * [`OnsitePrimalDual`] — the paper's Algorithm 1, an online primal-dual
//!   algorithm with a `(1 + a_max)` competitive ratio,
//! * [`OnsiteGreedy`] — the evaluation's baseline (most reliable cloudlet
//!   first),
//! * [`offline`] — the offline ILP (Eqs. 6–8) solved exactly by
//!   branch-and-bound, or bounded by its LP relaxation.

mod greedy;
pub mod offline;
mod primal_dual;

pub use greedy::OnsiteGreedy;
pub use primal_dual::{CapacityPolicy, OnsitePrimalDual, RejectionCounters};
