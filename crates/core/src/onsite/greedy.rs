use mec_obs::{
    DecisionEvent, NoopSink, Outcome, RejectReason, SitePlacement, TraceEvent, TraceSink,
};
use mec_topology::CloudletId;
use mec_workload::Request;

use crate::instance::{ProblemInstance, Scheme};
use crate::ledger::CapacityLedger;
use crate::schedule::{Decision, Placement};
use crate::scheduler::OnlineScheduler;

/// The evaluation's greedy baseline under the on-site scheme.
///
/// "Always tries to admit all coming requests by preferring to place VNF
/// instances in cloudlets with high reliabilities" (Section VI-A): the
/// cloudlets are scanned in decreasing reliability order and the request
/// is placed in the first one that is reliable enough (`r(c_j) > R_i`) and
/// has residual capacity for all `N_ij` instances across the request's
/// window. Payments are ignored entirely — which is exactly why the
/// baseline underperforms once resources become scarce.
#[derive(Debug)]
pub struct OnsiteGreedy<'a, S: TraceSink = NoopSink> {
    instance: &'a ProblemInstance,
    /// Cloudlet ids sorted by reliability, most reliable first.
    order: Vec<CloudletId>,
    ledger: CapacityLedger,
    /// Decision-event consumer; `NoopSink` (the default) compiles the
    /// instrumentation away entirely.
    sink: S,
}

impl<'a> OnsiteGreedy<'a, NoopSink> {
    /// Creates the greedy scheduler with tracing disabled.
    pub fn new(instance: &'a ProblemInstance) -> Self {
        Self::with_sink(instance, NoopSink)
    }
}

impl<'a, S: TraceSink> OnsiteGreedy<'a, S> {
    /// Like [`OnsiteGreedy::new`] but records one
    /// [`TraceEvent::Decision`] per `decide()` call into `sink`.
    ///
    /// Greedy ignores dual prices, so admission events carry a zero
    /// `dual_cost` and the raw payment as `margin`.
    pub fn with_sink(instance: &'a ProblemInstance, sink: S) -> Self {
        let mut order: Vec<CloudletId> = instance.network().cloudlets().map(|c| c.id()).collect();
        order.sort_by(|&a, &b| {
            let ra = instance
                .network()
                .cloudlet(a)
                .expect("valid id")
                .reliability();
            let rb = instance
                .network()
                .cloudlet(b)
                .expect("valid id")
                .reliability();
            rb.cmp(&ra).then(a.index().cmp(&b.index()))
        });
        OnsiteGreedy {
            instance,
            order,
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            sink,
        }
    }

    /// Consumes the scheduler, returning the trace sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Emits the one decision event for the current `decide()` call.
    /// Callers must gate on `S::ENABLED` so the disabled build never
    /// constructs the event.
    fn emit(&mut self, request: &Request, outcome: Outcome) {
        self.sink.record(TraceEvent::Decision(DecisionEvent {
            request: request.id().index(),
            algorithm: "greedy-onsite".to_string(),
            scheme: "onsite".to_string(),
            slot: request.arrival(),
            payment: request.payment(),
            outcome,
        }));
    }
}

impl<S: TraceSink> OnlineScheduler for OnsiteGreedy<'_, S> {
    fn name(&self) -> &'static str {
        "greedy-onsite"
    }

    fn scheme(&self) -> Scheme {
        Scheme::OnSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let compute = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v.compute() as f64,
            None => {
                if S::ENABLED {
                    self.emit(
                        request,
                        Outcome::Reject {
                            reason: RejectReason::UnknownVnf,
                            dual_cost: None,
                            margin: None,
                        },
                    );
                }
                return Decision::Reject;
            }
        };
        let first = request.arrival();
        let last = first + request.duration() - 1;
        let mut any_eligible = false;
        let mut admitted: Option<(CloudletId, u32)> = None;
        for &cid in &self.order {
            let Some(n) = self.instance.onsite_instances_for(
                request.vnf(),
                cid,
                request.reliability_requirement(),
            ) else {
                // Sorted descending: once one cloudlet is too unreliable,
                // all later ones are as well.
                break;
            };
            any_eligible = true;
            let weight = f64::from(n) * compute;
            if self.ledger.fits_window(cid, first, last, weight) {
                self.ledger.charge_window(cid, first, last, weight);
                admitted = Some((cid, n));
                break;
            }
        }
        match admitted {
            Some((cid, n)) => {
                if S::ENABLED {
                    self.emit(
                        request,
                        Outcome::Admit {
                            // Greedy is payment- and price-oblivious.
                            dual_cost: 0.0,
                            margin: request.payment(),
                            sites: vec![SitePlacement {
                                cloudlet: cid.index(),
                                instances: n,
                                dual_cost: 0.0,
                            }],
                        },
                    );
                }
                Decision::Admit(Placement::OnSite {
                    cloudlet: cid,
                    instances: n,
                })
            }
            None => {
                if S::ENABLED {
                    let reason = if any_eligible {
                        // Reliable-enough cloudlets existed but none had
                        // residual capacity for the whole window.
                        RejectReason::CapacityGate
                    } else {
                        RejectReason::ReliabilityInfeasible
                    };
                    self.emit(
                        request,
                        Outcome::Reject {
                            reason,
                            dual_cost: None,
                            margin: None,
                        },
                    );
                }
                Decision::Reject
            }
        }
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::run_online;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestId, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn instance(cloudlets: &[(u64, f64)]) -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, &(cap, r)) in cloudlets.iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, cap, rel(r)).unwrap();
        }
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(10)).unwrap()
    }

    fn request(id: usize, pay: f64) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(1), // NAT, compute 1, r = 0.99
            rel(0.9),
            0,
            2,
            pay,
            Horizon::new(10),
        )
        .unwrap()
    }

    #[test]
    fn prefers_most_reliable_cloudlet() {
        // Cloudlet 1 is more reliable, so greedy goes there first.
        let inst = instance(&[(100, 0.99), (100, 0.999)]);
        let mut g = OnsiteGreedy::new(&inst);
        match g.decide(&request(0, 1.0)) {
            Decision::Admit(Placement::OnSite { cloudlet, .. }) => {
                assert_eq!(cloudlet, CloudletId(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn falls_back_when_reliable_cloudlet_full() {
        let inst = instance(&[(100, 0.99), (2, 0.999)]);
        let mut g = OnsiteGreedy::new(&inst);
        // VNF NAT (c=1); vnf r=0.99, cloudlet 0.999, req 0.9 → N=1 or 2.
        // Fill the small reliable cloudlet, then spill to the big one.
        let mut seen_fallback = false;
        for i in 0..6 {
            if let Decision::Admit(Placement::OnSite { cloudlet, .. }) = g.decide(&request(i, 1.0))
            {
                if cloudlet == CloudletId(0) {
                    seen_fallback = true;
                }
            }
        }
        assert!(
            seen_fallback,
            "expected spill to the less reliable cloudlet"
        );
    }

    #[test]
    fn admits_regardless_of_payment() {
        // Greedy ignores payments: a tiny payment is admitted as readily
        // as a huge one.
        let inst = instance(&[(100, 0.999)]);
        let mut g = OnsiteGreedy::new(&inst);
        assert!(g.decide(&request(0, 0.001)).is_admit());
        assert!(g.decide(&request(1, 1e9)).is_admit());
    }

    #[test]
    fn rejects_when_requirement_unreachable() {
        let inst = instance(&[(100, 0.93)]);
        let mut g = OnsiteGreedy::new(&inst);
        let r = Request::new(
            RequestId(0),
            VnfTypeId(1),
            rel(0.95),
            0,
            1,
            5.0,
            Horizon::new(10),
        )
        .unwrap();
        assert_eq!(g.decide(&r), Decision::Reject);
    }

    #[test]
    fn never_violates_capacity() {
        let inst = instance(&[(3, 0.999), (3, 0.99)]);
        let mut g = OnsiteGreedy::new(&inst);
        let reqs: Vec<Request> = (0..40).map(|i| request(i, 2.0)).collect();
        let schedule = run_online(&mut g, &reqs).unwrap();
        assert_eq!(g.ledger().max_overflow(), 0.0);
        assert!(schedule.admitted_count() < 40, "capacity must bind");
        assert!(schedule.admitted_count() > 0);
    }
}
