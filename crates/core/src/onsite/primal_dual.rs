use mec_obs::{
    DecisionEvent, NoopSink, Outcome, RejectReason, SitePlacement, TraceEvent, TraceSink,
};
use mec_topology::CloudletId;
use mec_workload::Request;

use crate::instance::{ProblemInstance, Scheme};
use crate::ledger::CapacityLedger;
use crate::pricing::{CheapestFirst, DualPrices};
use crate::schedule::{Decision, Placement};
use crate::scheduler::{OnlineScheduler, SchedulerState};

/// How Algorithm 1 treats cloudlet capacity.
///
/// The raw algorithm of the paper may overflow capacity by a bounded
/// factor `ξ` (Lemma 8); the paper's *evaluation* avoids real violations
/// with the scaling approach of Fan & Ansari. All three options keep the
/// primal-dual admission rule identical and differ only in the capacity
/// gate applied before admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityPolicy {
    /// Admit only if the true demand fits in the residual capacity
    /// (evaluation default; a scaling factor of 1).
    Enforce,
    /// Paper's raw Algorithm 1: no capacity gate; violations may occur and
    /// are observable via the ledger's overflow statistics.
    AllowViolations,
    /// Scaling approach: the admission gate tests `σ ×` the true demand
    /// (σ ≥ 1), reserving headroom; the ledger is charged the true demand.
    Scaled(f64),
}

/// Algorithm 1 — online primal-dual scheduling under the on-site scheme.
///
/// Maintains one dual price `λ_{tj}` per (slot, cloudlet). For an arriving
/// request `ρ_i` the algorithm computes, per eligible cloudlet `c_j`
/// (those with `r(c_j) > R_i`), the dual cost
/// `Σ_{t ∈ T'_i} N_ij · c(f_i) · λ_{tj}`, picks the cheapest cloudlet, and
/// admits iff the payment strictly exceeds that cost. On admission the
/// chosen cloudlet's prices rise multiplicatively (Eq. 34), making heavily
/// loaded (slot, cloudlet) pairs progressively more expensive.
///
/// The final dual objective `Σ cap_j·λ_{tj} + Σ δ_i` is tracked and
/// exposed by [`OnsitePrimalDual::dual_objective`]; by weak duality it
/// upper-bounds the offline optimum, giving a per-run competitive
/// certificate.
///
/// # Example
///
/// ```
/// # use vnfrel::{ProblemInstance, onsite::{OnsitePrimalDual, CapacityPolicy}, run_online};
/// # use mec_topology::{NetworkBuilder, Reliability};
/// # use mec_workload::{VnfCatalog, RequestGenerator, Horizon};
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let ap = b.add_ap("ap");
/// b.add_cloudlet(ap, 100, Reliability::new(0.999)?)?;
/// let inst = ProblemInstance::new(b.build()?, VnfCatalog::standard(), Horizon::new(20))?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let reqs = RequestGenerator::new(inst.horizon()).generate(50, inst.catalog(), &mut rng)?;
/// let mut alg1 = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce)?;
/// let schedule = run_online(&mut alg1, &reqs)?;
/// assert!(schedule.revenue() <= alg1.dual_objective() + 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OnsitePrimalDual<'a, S: TraceSink = NoopSink> {
    instance: &'a ProblemInstance,
    policy: CapacityPolicy,
    /// Decision-event consumer; `NoopSink` (the default) compiles the
    /// instrumentation away entirely.
    sink: S,
    prices: DualPrices,
    ledger: CapacityLedger,
    /// Σ δ_i accumulated over all processed requests.
    sum_delta: f64,
    rejections: RejectionCounters,
    /// Scratch: `(dual cost, cloudlet)` keys for the current request.
    keys: Vec<(f64, u32)>,
    /// Scratch: `N_ij` per cloudlet for the current request.
    n_for: Vec<u32>,
    /// Scratch: `a_ij = N_ij·c(f_i)` per cloudlet for the current request.
    weight_for: Vec<f64>,
    /// Scratch: dual cost per cloudlet for the current request.
    cost_for: Vec<f64>,
}

/// Why requests were rejected, tallied over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RejectionCounters {
    /// No cloudlet satisfies `r(c_j) > R_i` (requirement unreachable
    /// on-site).
    pub no_eligible_cloudlet: usize,
    /// Eligible cloudlets exist and the payment beat the unrestricted
    /// price minimum, but the capacity gate excluded every candidate.
    pub capacity_gate: usize,
    /// The payment could not beat the dual price — of the cheapest
    /// cloudlet ignoring capacity (cheaper than any gate-passing
    /// candidate, so rejection is certain), or of the selected one.
    pub payment_test: usize,
}

impl<'a> OnsitePrimalDual<'a, NoopSink> {
    /// Creates the scheduler with all dual prices at zero and tracing
    /// disabled (the hooks compile to nothing).
    ///
    /// # Errors
    ///
    /// Returns [`VnfrelError::InvalidParameter`](crate::VnfrelError) if a
    /// scaling factor below 1 is given.
    pub fn new(
        instance: &'a ProblemInstance,
        policy: CapacityPolicy,
    ) -> Result<Self, crate::VnfrelError> {
        Self::with_sink(instance, policy, NoopSink)
    }
}

impl<'a, S: TraceSink> OnsitePrimalDual<'a, S> {
    /// Like [`OnsitePrimalDual::new`] but records one
    /// [`TraceEvent::Decision`] per `decide()` call into `sink`.
    pub fn with_sink(
        instance: &'a ProblemInstance,
        policy: CapacityPolicy,
        sink: S,
    ) -> Result<Self, crate::VnfrelError> {
        if let CapacityPolicy::Scaled(s) = policy {
            let valid = s.is_finite() && s >= 1.0;
            if !valid {
                return Err(crate::VnfrelError::InvalidParameter(
                    "scaling factor must be ≥ 1",
                ));
            }
        }
        let m = instance.cloudlet_count();
        let t = instance.horizon().len();
        Ok(OnsitePrimalDual {
            instance,
            policy,
            sink,
            prices: DualPrices::new(m, t),
            ledger: CapacityLedger::new(instance.network(), instance.horizon()),
            sum_delta: 0.0,
            rejections: RejectionCounters::default(),
            keys: Vec::with_capacity(m),
            n_for: vec![0; m],
            weight_for: vec![0.0; m],
            cost_for: vec![0.0; m],
        })
    }

    /// Rejection tallies by cause.
    pub fn rejections(&self) -> RejectionCounters {
        self.rejections
    }

    /// Current dual price `λ_{tj}`.
    pub fn lambda(&self, cloudlet: CloudletId, slot: usize) -> f64 {
        self.prices.get(cloudlet.index(), slot)
    }

    /// Consumes the scheduler, returning the trace sink (e.g. to read a
    /// [`mec_obs::RingSink`] back out).
    pub fn into_sink(self) -> S {
        self.sink
    }

    fn algorithm_name(&self) -> &'static str {
        match self.policy {
            CapacityPolicy::Enforce => "alg1-primal-dual",
            CapacityPolicy::AllowViolations => "alg1-primal-dual-raw",
            CapacityPolicy::Scaled(_) => "alg1-primal-dual-scaled",
        }
    }

    /// Emits the one decision event for the current `decide()` call.
    /// Callers must gate on `S::ENABLED` so the disabled build never
    /// constructs the event.
    fn emit(&mut self, request: &Request, outcome: Outcome) {
        self.sink.record(TraceEvent::Decision(DecisionEvent {
            request: request.id().index(),
            algorithm: self.algorithm_name().to_string(),
            scheme: "onsite".to_string(),
            slot: request.arrival(),
            payment: request.payment(),
            outcome,
        }));
    }

    /// The dual objective `Σ_{t,j} cap_j·λ_{tj} + Σ_i δ_i` — by weak
    /// duality an upper bound on the offline optimum of the LP relaxation
    /// (and hence of the ILP).
    pub fn dual_objective(&self) -> f64 {
        let lambda_part: f64 = (0..self.prices.cloudlet_count())
            .map(|j| self.ledger.capacity(CloudletId(j)) * self.prices.row_total(j))
            .sum();
        lambda_part + self.sum_delta
    }
}

impl<S: TraceSink> OnlineScheduler for OnsitePrimalDual<'_, S> {
    fn name(&self) -> &'static str {
        self.algorithm_name()
    }

    fn scheme(&self) -> Scheme {
        Scheme::OnSite
    }

    fn decide(&mut self, request: &Request) -> Decision {
        let compute = match self.instance.catalog().get(request.vnf()) {
            Some(v) => v.compute() as f64,
            None => {
                if S::ENABLED {
                    self.emit(
                        request,
                        Outcome::Reject {
                            reason: RejectReason::UnknownVnf,
                            dual_cost: None,
                            margin: None,
                        },
                    );
                }
                return Decision::Reject;
            }
        };
        let req_rel = request.reliability_requirement();
        let first = request.arrival();
        let last = first + request.duration() - 1;

        // Dual costs per eligible cloudlet (r(c_j) > R_i): `N_ij` from the
        // precomputed availability ladder, the window sum of λ in O(1)
        // from the prefix rows.
        self.keys.clear();
        let mut best_unrestricted: Option<f64> = None; // min cost ignoring capacity
        for j in 0..self.prices.cloudlet_count() {
            let Some(n) = self
                .instance
                .onsite_instances_for(request.vnf(), CloudletId(j), req_rel)
            else {
                continue;
            };
            let weight = f64::from(n) * compute; // a_ij = N_ij · c(f_i)
            let cost = weight * self.prices.window_sum(j, first, last);
            if best_unrestricted.is_none_or(|c| cost < c) {
                best_unrestricted = Some(cost);
            }
            self.n_for[j] = n;
            self.weight_for[j] = weight;
            self.cost_for[j] = cost;
            self.keys.push((cost, j as u32));
        }

        // Dual bookkeeping: δ_i uses the capacity-unrestricted minimum so
        // the accumulated dual stays feasible (Constraint 32) even when a
        // capacity gate forces a rejection.
        if let Some(min_cost) = best_unrestricted {
            self.sum_delta += (request.payment() - min_cost).max(0.0);
        }

        if self.keys.is_empty() {
            self.rejections.no_eligible_cloudlet += 1;
            if S::ENABLED {
                self.emit(
                    request,
                    Outcome::Reject {
                        reason: RejectReason::ReliabilityInfeasible,
                        dual_cost: None,
                        margin: None,
                    },
                );
            }
            return Decision::Reject;
        }

        // Any gate-passing candidate costs at least the unrestricted
        // minimum, so a payment that cannot beat that minimum fails the
        // admission rule no matter which cloudlet the gate selects —
        // skip the selection scan entirely. This changes only which
        // counter a doubly-doomed request lands in (payment_test instead
        // of capacity_gate), never the decision.
        if let Some(min_cost) = best_unrestricted {
            if request.payment() - min_cost <= 0.0 {
                self.rejections.payment_test += 1;
                if S::ENABLED {
                    self.emit(
                        request,
                        Outcome::Reject {
                            reason: RejectReason::DoomedShortCircuit,
                            dual_cost: Some(min_cost),
                            margin: Some(request.payment() - min_cost),
                        },
                    );
                }
                return Decision::Reject;
            }
        }

        // Cheapest candidate passing the capacity gate. Candidates are
        // drawn lazily in ascending (cost, id) order — identical to the
        // old full argmin (ties toward the lower id) but the common case
        // stops after ordering one small block.
        let policy = self.policy;
        let mut best: Option<usize> = None;
        let mut it = CheapestFirst::new(&mut self.keys);
        while let Some(j32) = it.next() {
            let j = j32 as usize;
            let gate = match policy {
                CapacityPolicy::Enforce => self.weight_for[j],
                CapacityPolicy::AllowViolations => 0.0,
                CapacityPolicy::Scaled(s) => self.weight_for[j] * s,
            };
            if gate > 0.0 && !self.ledger.fits_window(CloudletId(j), first, last, gate) {
                continue;
            }
            best = Some(j);
            break;
        }
        let Some(j) = best else {
            self.rejections.capacity_gate += 1;
            if S::ENABLED {
                self.emit(
                    request,
                    Outcome::Reject {
                        reason: RejectReason::CapacityGate,
                        dual_cost: best_unrestricted,
                        margin: best_unrestricted.map(|c| request.payment() - c),
                    },
                );
            }
            return Decision::Reject;
        };
        let (n, weight, cost) = (self.n_for[j], self.weight_for[j], self.cost_for[j]);
        // Admission rule: pay_i − min_j cost_j > 0.
        if request.payment() - cost <= 0.0 {
            self.rejections.payment_test += 1;
            if S::ENABLED {
                self.emit(
                    request,
                    Outcome::Reject {
                        reason: RejectReason::PaymentTest,
                        dual_cost: Some(cost),
                        margin: Some(request.payment() - cost),
                    },
                );
            }
            return Decision::Reject;
        }

        // Primal update: place all N_ij instances at cloudlet j.
        self.ledger
            .charge_window(CloudletId(j), first, last, weight);
        // Dual update (Eq. 34) on the chosen cloudlet over active slots;
        // the prefix row rebuilds in O(T).
        let cap = self.ledger.capacity(CloudletId(j));
        let d = request.duration() as f64;
        let pay = request.payment();
        self.prices.update_window(j, first, last, |l| {
            l * (1.0 + weight / cap) + weight * pay / (d * cap)
        });
        if S::ENABLED {
            self.emit(
                request,
                Outcome::Admit {
                    dual_cost: cost,
                    margin: pay - cost,
                    sites: vec![SitePlacement {
                        cloudlet: j,
                        instances: n,
                        dual_cost: cost,
                    }],
                },
            );
        }
        Decision::Admit(Placement::OnSite {
            cloudlet: CloudletId(j),
            instances: n,
        })
    }

    fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut CapacityLedger {
        &mut self.ledger
    }

    // Counter order: [no_eligible_cloudlet, capacity_gate, payment_test].
    fn export_state(&self) -> SchedulerState {
        SchedulerState {
            used: self.ledger.used_grid().to_vec(),
            lambda: self.prices.values().to_vec(),
            sum_delta: self.sum_delta,
            counters: vec![
                self.rejections.no_eligible_cloudlet as u64,
                self.rejections.capacity_gate as u64,
                self.rejections.payment_test as u64,
            ],
        }
    }

    fn import_state(&mut self, state: &SchedulerState) -> Result<(), crate::VnfrelError> {
        if state.counters.len() != 3 {
            return Err(crate::VnfrelError::StateRestore(
                "on-site counter vector must have exactly 3 entries",
            ));
        }
        if !state.sum_delta.is_finite() {
            return Err(crate::VnfrelError::StateRestore(
                "non-finite sum_delta in snapshot",
            ));
        }
        // Pre-validate the usage grid so a failure below cannot leave the
        // scheduler half-restored (DualPrices::restore also validates
        // before mutating).
        if state.used.len() != self.ledger.used_grid().len()
            || state.used.iter().any(|u| !u.is_finite() || *u < 0.0)
        {
            return Err(crate::VnfrelError::StateRestore(
                "usage grid does not fit this scheduler",
            ));
        }
        self.prices.restore(&state.lambda)?;
        self.ledger.restore_used(&state.used)?;
        self.sum_delta = state.sum_delta;
        self.rejections = RejectionCounters {
            no_eligible_cloudlet: state.counters[0] as usize,
            capacity_gate: state.counters[1] as usize,
            payment_test: state.counters[2] as usize,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::run_online;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestId, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    /// One AP network with two cloudlets of given (capacity, reliability).
    fn instance(cloudlets: &[(u64, f64)], horizon: usize) -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, &(cap, r)) in cloudlets.iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, cap, rel(r)).unwrap();
        }
        ProblemInstance::new(
            b.build().unwrap(),
            VnfCatalog::standard(),
            Horizon::new(horizon),
        )
        .unwrap()
    }

    fn request(id: usize, vnf: usize, req: f64, arrival: usize, dur: usize, pay: f64) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(vnf),
            rel(req),
            arrival,
            dur,
            pay,
            Horizon::new(20),
        )
        .unwrap()
    }

    #[test]
    fn first_request_is_admitted_when_prices_are_zero() {
        let inst = instance(&[(100, 0.999)], 20);
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let d = alg.decide(&request(0, 0, 0.95, 0, 2, 5.0));
        match d {
            Decision::Admit(Placement::OnSite { instances, .. }) => assert!(instances >= 1),
            other => panic!("expected admission, got {other:?}"),
        }
        // Prices rose on the active slots only.
        assert!(alg.lambda(CloudletId(0), 0) > 0.0);
        assert!(alg.lambda(CloudletId(0), 1) > 0.0);
        assert_eq!(alg.lambda(CloudletId(0), 2), 0.0);
    }

    #[test]
    fn rejects_when_no_cloudlet_reliable_enough() {
        let inst = instance(&[(100, 0.93)], 20);
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        // Requirement above the cloudlet reliability is unsatisfiable.
        let d = alg.decide(&request(0, 0, 0.95, 0, 1, 100.0));
        assert_eq!(d, Decision::Reject);
    }

    #[test]
    fn prices_rise_until_low_payers_are_rejected() {
        let inst = instance(&[(10, 0.999)], 20);
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::AllowViolations).unwrap();
        let mut admitted = 0;
        let mut rejected = 0;
        for i in 0..200 {
            // Identical low-paying requests on the same slot.
            match alg.decide(&request(i, 1, 0.9, 0, 1, 1.5)) {
                Decision::Admit(_) => admitted += 1,
                Decision::Reject => rejected += 1,
            }
        }
        assert!(admitted > 0, "some requests must be admitted");
        assert!(rejected > 0, "dual prices must eventually refuse");
    }

    #[test]
    fn enforce_policy_never_violates_capacity() {
        let inst = instance(&[(6, 0.999), (6, 0.995)], 20);
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let reqs: Vec<Request> = (0..80)
            .map(|i| {
                request(
                    i,
                    i % 10,
                    0.9 + (i % 5) as f64 * 0.015,
                    (i / 10) % 18,
                    2,
                    9.0,
                )
            })
            .collect();
        run_online(&mut alg, &reqs).unwrap();
        assert_eq!(alg.ledger().max_overflow(), 0.0);
    }

    #[test]
    fn scaled_policy_reserves_headroom() {
        let inst = instance(&[(10, 0.999)], 20);
        let mut strict = OnsitePrimalDual::new(&inst, CapacityPolicy::Scaled(2.0)).unwrap();
        let mut loose = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let reqs: Vec<Request> = (0..40).map(|i| request(i, 1, 0.9, 0, 1, 8.0)).collect();
        let s = run_online(&mut strict, &reqs).unwrap();
        let l = run_online(&mut loose, &reqs).unwrap();
        // Doubling the gate demand can only reduce admissions.
        assert!(s.admitted_count() <= l.admitted_count());
        assert_eq!(strict.ledger().max_overflow(), 0.0);
    }

    #[test]
    fn invalid_scale_rejected() {
        let inst = instance(&[(10, 0.999)], 20);
        assert!(OnsitePrimalDual::new(&inst, CapacityPolicy::Scaled(0.5)).is_err());
        assert!(OnsitePrimalDual::new(&inst, CapacityPolicy::Scaled(f64::NAN)).is_err());
    }

    #[test]
    fn rejection_counters_distinguish_causes() {
        // Requirement above the only cloudlet → no_eligible_cloudlet.
        let weak = instance(&[(100, 0.93)], 20);
        let mut alg = OnsitePrimalDual::new(&weak, CapacityPolicy::Enforce).unwrap();
        alg.decide(&request(0, 0, 0.95, 0, 1, 100.0));
        assert_eq!(alg.rejections().no_eligible_cloudlet, 1);

        // Saturated prices → payment_test.
        let small = instance(&[(10, 0.999)], 20);
        let mut alg = OnsitePrimalDual::new(&small, CapacityPolicy::AllowViolations).unwrap();
        let mut saw_payment_reject = false;
        for i in 0..50 {
            alg.decide(&request(i, 1, 0.9, 0, 1, 1.5));
            if alg.rejections().payment_test > 0 {
                saw_payment_reject = true;
                break;
            }
        }
        assert!(saw_payment_reject);

        // Capacity gate: a scaled gate (σ·w ≤ residual) starts failing
        // after five unit admits on a 10-unit cloudlet, while λ has only
        // reached ≈ 0.61·pay — so the payment pre-test still passes and
        // the rejection is attributed to the gate.
        let tiny = instance(&[(10, 0.999)], 20);
        let mut alg = OnsitePrimalDual::new(&tiny, CapacityPolicy::Scaled(6.0)).unwrap();
        for i in 0..8 {
            alg.decide(&request(i, 1, 0.9, 0, 1, 1e6));
        }
        assert!(alg.rejections().capacity_gate > 0, "{:?}", alg.rejections());
    }

    #[test]
    fn dual_objective_upper_bounds_revenue() {
        let inst = instance(&[(20, 0.999), (30, 0.998)], 20);
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let reqs: Vec<Request> = (0..60)
            .map(|i| request(i, i % 10, 0.9, i % 15, 1 + i % 4, 3.0 + (i % 7) as f64))
            .collect();
        let schedule = run_online(&mut alg, &reqs).unwrap();
        assert!(
            schedule.revenue() <= alg.dual_objective() + 1e-6,
            "revenue {} exceeds dual {}",
            schedule.revenue(),
            alg.dual_objective()
        );
    }

    #[test]
    fn picks_cheaper_cloudlet_under_load() {
        // Two identical cloudlets; load the first, the next request should
        // go to the second (its prices are still zero).
        let inst = instance(&[(100, 0.999), (100, 0.999)], 20);
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        // Force traffic onto cloudlet 0 by admitting one request (ties are
        // broken toward the lower id).
        let d0 = alg.decide(&request(0, 1, 0.9, 0, 1, 5.0));
        let c0 = match d0 {
            Decision::Admit(Placement::OnSite { cloudlet, .. }) => cloudlet,
            other => panic!("{other:?}"),
        };
        assert_eq!(c0, CloudletId(0));
        let d1 = alg.decide(&request(1, 1, 0.9, 0, 1, 5.0));
        match d1 {
            Decision::Admit(Placement::OnSite { cloudlet, .. }) => {
                assert_eq!(cloudlet, CloudletId(1), "should prefer unloaded cloudlet");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn raw_policy_reports_bounded_overflow() {
        // Low payers arrive first and barely move the prices; then high
        // payers outbid the (still cheap) dual cost and overfill slot 0 —
        // the violation pattern Lemma 8 bounds.
        let inst = instance(&[(5, 0.999)], 10);
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::AllowViolations).unwrap();
        let reqs: Vec<Request> = (0..50)
            .map(|i| {
                let pay = if i < 25 { 0.1 } else { 1000.0 };
                request(i, 1, 0.9, 0, 1, pay)
            })
            .collect();
        run_online(&mut alg, &reqs).unwrap();
        assert!(
            alg.ledger().max_overflow() > 0.0,
            "expected over-commitment"
        );
    }
}
