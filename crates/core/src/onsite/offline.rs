//! Offline optimum for the on-site scheme — the ILP of Eqs. (6)–(8),
//! solved by branch-and-bound (substituting for the paper's CPLEX).
//!
//! The model is built with `X_i` substituted out: since Eq. (5) ties
//! `X_i = Σ_j Y_ij`, the ILP over `Y` alone with a per-request packing row
//! `Σ_j Y_ij ≤ 1` and objective `Σ_i pay_i · Σ_j Y_ij` is equivalent and
//! smaller. Upper bounds (`Y_ij ≤ 1`) are variable bounds, not rows.

use std::collections::HashMap;

use lp_solver::{solve_lp, solve_mip, BnbConfig, Cmp, Model, Sense, VarId};
use mec_topology::CloudletId;
use mec_workload::Request;

use crate::error::VnfrelError;
use crate::instance::ProblemInstance;
use crate::reliability::onsite_instances;
use crate::schedule::{Decision, Placement, Schedule};

/// Configuration for the offline solve.
#[derive(Debug, Clone, Default)]
pub struct OfflineConfig {
    /// Branch-and-bound budget.
    pub bnb: BnbConfig,
    /// Skip branch-and-bound and return only the LP-relaxation bound
    /// (much faster at large scale; the bound is exact enough for the
    /// benchmark curves because the packing LP's integrality gap is small
    /// when per-request demands are small relative to capacities).
    pub lp_only: bool,
}

/// Result of the offline optimization.
#[derive(Debug, Clone)]
pub struct OfflineSolution {
    /// Valid upper bound on the offline optimum (LP or B&B bound).
    pub upper_bound: f64,
    /// Best integer-feasible schedule found, with its revenue.
    pub incumbent: Option<(f64, Schedule)>,
    /// Whether the incumbent is proven optimal.
    pub exact: bool,
}

impl OfflineSolution {
    /// Revenue of the incumbent, or the upper bound when only a bound is
    /// available (LP-only mode) — the value plotted as "optimal" in the
    /// benchmark figures.
    pub fn revenue(&self) -> f64 {
        self.incumbent
            .as_ref()
            .map(|(r, _)| *r)
            .unwrap_or(self.upper_bound)
    }
}

/// The assembled ILP plus the bookkeeping needed to interpret solutions.
struct BuiltModel {
    model: Model,
    /// vars[(i, j)] = Y_ij with its replica count N_ij.
    vars: HashMap<(usize, usize), (VarId, u32)>,
    /// Row index of each capacity constraint, keyed by (cloudlet, slot).
    capacity_rows: HashMap<(usize, usize), usize>,
}

fn build_model(
    instance: &ProblemInstance,
    requests: &[Request],
) -> Result<BuiltModel, VnfrelError> {
    let mut model = Model::new(Sense::Maximize);
    let mut vars: HashMap<(usize, usize), (VarId, u32)> = HashMap::new();
    for (i, r) in requests.iter().enumerate() {
        let vnf = instance.catalog().require(r.vnf())?;
        for cloudlet in instance.network().cloudlets() {
            if let Some(n) = onsite_instances(
                vnf.reliability(),
                cloudlet.reliability(),
                r.reliability_requirement(),
            ) {
                let v = model.add_binary_var(r.payment())?;
                vars.insert((i, cloudlet.id().index()), (v, n));
            }
        }
    }

    // Σ_j Y_ij ≤ 1 per request (pick at most one cloudlet).
    for i in 0..requests.len() {
        let terms: Vec<(VarId, f64)> = instance
            .network()
            .cloudlets()
            .filter_map(|c| vars.get(&(i, c.id().index())).map(|&(v, _)| (v, 1.0)))
            .collect();
        if !terms.is_empty() {
            model.add_constraint(terms, Cmp::Le, 1.0)?;
        }
    }

    // Capacity per (slot, cloudlet): Σ_i V_i[t]·N_ij·c(f_i)·Y_ij ≤ cap_j.
    let mut capacity_rows = HashMap::new();
    for cloudlet in instance.network().cloudlets() {
        let j = cloudlet.id().index();
        for t in instance.horizon().slots() {
            let mut terms = Vec::new();
            for (i, r) in requests.iter().enumerate() {
                if !r.active_at(t) {
                    continue;
                }
                if let Some(&(v, n)) = vars.get(&(i, j)) {
                    let c = instance.catalog().require(r.vnf())?.compute() as f64;
                    terms.push((v, f64::from(n) * c));
                }
            }
            if !terms.is_empty() {
                capacity_rows.insert((j, t), model.num_constraints());
                model.add_constraint(terms, Cmp::Le, cloudlet.capacity() as f64)?;
            }
        }
    }
    Ok(BuiltModel {
        model,
        vars,
        capacity_rows,
    })
}

/// Shadow prices of the capacity constraints in the LP relaxation,
/// indexed `[cloudlet][slot]` (zero where no request could ever use the
/// pair).
///
/// These are the *offline* analogues of Algorithm 1's online prices
/// `λ_{tj}`; the `ablation_duals` bench compares the two.
///
/// # Errors
///
/// Propagates model/solver errors.
pub fn capacity_shadow_prices(
    instance: &ProblemInstance,
    requests: &[Request],
) -> Result<Vec<Vec<f64>>, VnfrelError> {
    instance.check_requests(requests)?;
    let mut out = vec![vec![0.0; instance.horizon().len()]; instance.cloudlet_count()];
    if requests.is_empty() {
        return Ok(out);
    }
    let built = build_model(instance, requests)?;
    if built.vars.is_empty() {
        return Ok(out);
    }
    if let lp_solver::LpOutcome::Optimal(sol) = solve_lp(&built.model)? {
        for (&(j, t), &row) in &built.capacity_rows {
            out[j][t] = sol.duals[row];
        }
    }
    Ok(out)
}

/// Builds and solves the offline on-site ILP.
///
/// # Errors
///
/// Propagates model validation and solver errors; an instance/request
/// mismatch surfaces as [`VnfrelError::Workload`].
pub fn solve(
    instance: &ProblemInstance,
    requests: &[Request],
    config: &OfflineConfig,
) -> Result<OfflineSolution, VnfrelError> {
    instance.check_requests(requests)?;
    if requests.is_empty() {
        return Ok(OfflineSolution {
            upper_bound: 0.0,
            incumbent: Some((0.0, Schedule::new())),
            exact: true,
        });
    }

    let BuiltModel { model, vars, .. } = build_model(instance, requests)?;

    if vars.is_empty() {
        // No request can be served anywhere: the optimum is zero.
        return Ok(OfflineSolution {
            upper_bound: 0.0,
            incumbent: Some((0.0, reject_all(requests))),
            exact: true,
        });
    }

    if config.lp_only {
        let lp = solve_lp(&model)?;
        let bound = match lp {
            lp_solver::LpOutcome::Optimal(s) => s.objective,
            // The model is always feasible (all zeros) and bounded.
            _ => 0.0,
        };
        return Ok(OfflineSolution {
            upper_bound: bound,
            incumbent: None,
            exact: false,
        });
    }

    let outcome = solve_mip(&model, &config.bnb)?;
    match outcome {
        lp_solver::MipOutcome::Optimal(sol) | lp_solver::MipOutcome::Feasible(sol) => {
            let exact = sol.gap() < 1e-9;
            let schedule = extract_schedule(requests, instance, &vars, &sol.values);
            Ok(OfflineSolution {
                upper_bound: sol.bound,
                incumbent: Some((schedule.revenue(), schedule)),
                exact,
            })
        }
        lp_solver::MipOutcome::NoIncumbent { bound } => Ok(OfflineSolution {
            upper_bound: bound,
            incumbent: None,
            exact: false,
        }),
        // All-zero is feasible and payments are finite, so these cannot
        // occur; report a zero bound defensively.
        lp_solver::MipOutcome::Infeasible | lp_solver::MipOutcome::Unbounded => {
            Ok(OfflineSolution {
                upper_bound: 0.0,
                incumbent: Some((0.0, reject_all(requests))),
                exact: false,
            })
        }
    }
}

fn reject_all(requests: &[Request]) -> Schedule {
    let mut s = Schedule::new();
    for r in requests {
        s.record(r, Decision::Reject);
    }
    s
}

fn extract_schedule(
    requests: &[Request],
    instance: &ProblemInstance,
    vars: &HashMap<(usize, usize), (VarId, u32)>,
    values: &[f64],
) -> Schedule {
    let mut s = Schedule::new();
    for (i, r) in requests.iter().enumerate() {
        let mut chosen = None;
        for cloudlet in instance.network().cloudlets() {
            let j = cloudlet.id().index();
            if let Some(&(v, n)) = vars.get(&(i, j)) {
                if values[v.index()] > 0.5 {
                    chosen = Some(Placement::OnSite {
                        cloudlet: CloudletId(j),
                        instances: n,
                    });
                    break;
                }
            }
        }
        match chosen {
            Some(p) => s.record(r, Decision::Admit(p)),
            None => s.record(r, Decision::Reject),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestId, VnfCatalog, VnfTypeId};

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn instance(cloudlets: &[(u64, f64)], horizon: usize) -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, &(cap, r)) in cloudlets.iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, cap, rel(r)).unwrap();
        }
        ProblemInstance::new(
            b.build().unwrap(),
            VnfCatalog::standard(),
            Horizon::new(horizon),
        )
        .unwrap()
    }

    fn request(id: usize, pay: f64, dur: usize) -> Request {
        Request::new(
            RequestId(id),
            VnfTypeId(1), // NAT: compute 1, r 0.99
            rel(0.9),
            0,
            dur,
            pay,
            Horizon::new(10),
        )
        .unwrap()
    }

    #[test]
    fn empty_request_set() {
        let inst = instance(&[(10, 0.999)], 10);
        let sol = solve(&inst, &[], &OfflineConfig::default()).unwrap();
        assert_eq!(sol.revenue(), 0.0);
        assert!(sol.exact);
    }

    #[test]
    fn picks_high_payers_under_scarcity() {
        // Capacity 2, NAT needs N=1 instance of compute 1 at r_c = 0.999
        // for req 0.9 (0.99·0.999 > 0.9). Four overlapping requests, only
        // two fit; optimum takes the two big payments.
        let inst = instance(&[(2, 0.999)], 10);
        let reqs = vec![
            request(0, 1.0, 2),
            request(1, 9.0, 2),
            request(2, 8.0, 2),
            request(3, 2.0, 2),
        ];
        let sol = solve(&inst, &reqs, &OfflineConfig::default()).unwrap();
        assert!(sol.exact);
        assert!((sol.revenue() - 17.0).abs() < 1e-6, "got {}", sol.revenue());
        let (_, schedule) = sol.incumbent.unwrap();
        assert!(schedule.is_admitted(RequestId(1)));
        assert!(schedule.is_admitted(RequestId(2)));
        assert!(!schedule.is_admitted(RequestId(0)));
    }

    #[test]
    fn impossible_requirements_yield_zero() {
        let inst = instance(&[(10, 0.92)], 10);
        let reqs: Vec<Request> = (0..3)
            .map(|i| {
                Request::new(
                    RequestId(i),
                    VnfTypeId(1),
                    rel(0.95), // above every cloudlet's reliability
                    0,
                    1,
                    5.0,
                    Horizon::new(10),
                )
                .unwrap()
            })
            .collect();
        let sol = solve(&inst, &reqs, &OfflineConfig::default()).unwrap();
        assert_eq!(sol.revenue(), 0.0);
        assert!(sol.exact);
    }

    #[test]
    fn lp_only_upper_bounds_exact() {
        let inst = instance(&[(3, 0.999), (3, 0.99)], 10);
        let reqs: Vec<Request> = (0..6).map(|i| request(i, 2.0 + i as f64, 2)).collect();
        let exact = solve(&inst, &reqs, &OfflineConfig::default()).unwrap();
        let lp = solve(
            &inst,
            &reqs,
            &OfflineConfig {
                lp_only: true,
                ..OfflineConfig::default()
            },
        )
        .unwrap();
        assert!(lp.incumbent.is_none());
        assert!(!lp.exact);
        assert!(
            lp.upper_bound + 1e-6 >= exact.revenue(),
            "lp {} < exact {}",
            lp.upper_bound,
            exact.revenue()
        );
    }

    #[test]
    fn shadow_prices_positive_only_under_contention() {
        // One cloudlet of capacity 2; three concurrent requests (NAT,
        // N=1, c=1) competing for slots 0–1 → those capacity rows bind,
        // later slots stay free.
        let inst = instance(&[(2, 0.999)], 10);
        let reqs: Vec<Request> = (0..3).map(|i| request(i, 5.0 + i as f64, 2)).collect();
        let prices = capacity_shadow_prices(&inst, &reqs).unwrap();
        assert_eq!(prices.len(), 1);
        assert_eq!(prices[0].len(), 10);
        assert!(
            prices[0][0] > 0.0,
            "binding slot must be priced: {prices:?}"
        );
        assert!(prices[0][5].abs() < 1e-9, "idle slot must be free");
        for row in &prices {
            for &p in row {
                assert!(p >= -1e-9, "capacity duals must be non-negative");
            }
        }
    }

    #[test]
    fn shadow_prices_zero_without_contention() {
        let inst = instance(&[(100, 0.999)], 10);
        let reqs: Vec<Request> = (0..3).map(|i| request(i, 5.0, 2)).collect();
        let prices = capacity_shadow_prices(&inst, &reqs).unwrap();
        assert!(prices.iter().flatten().all(|&p| p.abs() < 1e-9));
        // Empty stream: all zeros too.
        let prices = capacity_shadow_prices(&inst, &[]).unwrap();
        assert!(prices.iter().flatten().all(|&p| p == 0.0));
    }

    #[test]
    fn schedule_respects_capacity() {
        let inst = instance(&[(4, 0.999)], 10);
        let reqs: Vec<Request> = (0..10).map(|i| request(i, 3.0, 3)).collect();
        let sol = solve(&inst, &reqs, &OfflineConfig::default()).unwrap();
        let (_, schedule) = sol.incumbent.unwrap();
        // Count per-slot usage manually.
        for t in 0..3 {
            let mut used = 0u64;
            for (i, r) in reqs.iter().enumerate() {
                if let Some(Placement::OnSite { instances, .. }) = schedule.placement(RequestId(i))
                {
                    if r.active_at(t) {
                        used += u64::from(*instances);
                    }
                }
            }
            assert!(used <= 4, "slot {t} used {used}");
        }
    }
}
