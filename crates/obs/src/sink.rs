//! Trace sinks: where decision/fault events go.
//!
//! Schedulers and the simulation engine are generic over `S: TraceSink`.
//! The default [`NoopSink`] advertises `ENABLED = false`, so every
//! instrumentation hook sits behind `if S::ENABLED { ... }` and the
//! monomorphized no-op variant compiles to the exact pre-instrumentation
//! code (verified by the `obs_overhead` section of `bench_report`).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::rc::Rc;

use crate::event::TraceEvent;
use crate::json::to_json;

/// A consumer of trace events.
pub trait TraceSink {
    /// Whether this sink actually wants events. Instrumentation sites
    /// must guard event *construction* with `if S::ENABLED` so disabled
    /// builds never allocate or format anything.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);
}

/// The default sink: drops everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Forwarding impl so callers can lend a sink without giving it up.
/// Inherits `ENABLED`, so `&mut NoopSink` still compiles away.
impl<S: TraceSink> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        (**self).record(event);
    }
}

/// Shared-ownership sink: lets a scheduler and the simulation engine
/// append to one stream within a single thread.
impl<S: TraceSink> TraceSink for Rc<RefCell<S>> {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.borrow_mut().record(event);
    }
}

/// In-memory ring buffer keeping the most recent `capacity` events.
///
/// Useful in tests and for "flight recorder" style always-on tracing
/// where only the tail matters.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    /// Total number of events ever recorded, including evicted ones.
    recorded: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            recorded: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events recorded over the sink's lifetime (evictions included).
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Consumes the ring, returning retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.recorded += 1;
    }
}

/// Streams events as JSON lines to any [`io::Write`].
///
/// IO errors are sticky: the first failure is stored and later writes are
/// skipped, so a full disk does not abort a multi-hour run mid-flight.
/// Call [`JsonlSink::finish`] to flush and surface the error.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<io::Error>,
    written: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Consider `io::BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            error: None,
            written: 0,
        }
    }

    /// Number of events successfully serialized so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// True once a write has failed; subsequent events are dropped.
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }

    /// Flushes and returns the inner writer, or the first IO error
    /// encountered during recording/flushing.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = to_json(&event);
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_trace;

    fn breach(slot: usize) -> TraceEvent {
        TraceEvent::SlaBreach { slot, request: 0 }
    }

    #[test]
    fn noop_is_disabled() {
        const { assert!(!NoopSink::ENABLED) };
        assert!(RingSink::new(4).capacity >= 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = RingSink::new(2);
        for slot in 0..5 {
            ring.record(breach(slot));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_recorded(), 5);
        let slots: Vec<usize> = ring
            .events()
            .map(|e| match e {
                TraceEvent::SlaBreach { slot, .. } => *slot,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(slots, vec![3, 4]);
    }

    #[test]
    fn jsonl_sink_round_trips_through_bytes() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(breach(1));
        sink.record(TraceEvent::OutageStart {
            slot: 2,
            cloudlet: 0,
        });
        assert_eq!(sink.written(), 2);
        let bytes = sink.finish().unwrap();
        let parsed = parse_trace(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(
            parsed,
            vec![
                breach(1),
                TraceEvent::OutageStart {
                    slot: 2,
                    cloudlet: 0
                }
            ]
        );
    }

    #[test]
    fn jsonl_sink_error_is_sticky() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    Err(io::Error::other("disk full"))
                } else {
                    self.0 -= 1;
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(FailAfter(1));
        sink.record(breach(0));
        sink.record(breach(1));
        sink.record(breach(2));
        assert_eq!(sink.written(), 1);
        assert!(sink.has_error());
        assert!(sink.finish().is_err());
    }

    #[test]
    fn shared_rc_sink_accumulates_from_two_handles() {
        let shared = Rc::new(RefCell::new(RingSink::new(8)));
        let mut a = Rc::clone(&shared);
        let mut b = Rc::clone(&shared);
        a.record(breach(0));
        b.record(breach(1));
        assert_eq!(shared.borrow().len(), 2);
    }
}
