//! Observability layer for the vnfrel scheduling pipeline.
//!
//! Pure-std (zero dependencies) so every crate in the workspace can use
//! it. Three pieces:
//!
//! - [`event`] / [`json`]: typed trace events with a stable JSONL wire
//!   format — one [`TraceEvent::Decision`] per scheduler `decide()` call
//!   plus fault-injection events (outages, kills, SLA breaches,
//!   recoveries).
//! - [`sink`]: the [`TraceSink`] abstraction schedulers are generic
//!   over. [`NoopSink`] (the default) advertises `ENABLED = false` so
//!   instrumentation compiles away entirely; [`JsonlSink`] streams to a
//!   writer; [`RingSink`] keeps an in-memory tail.
//! - [`metrics`]: a named registry of counters/gauges/histograms with
//!   relaxed-atomic hot-path recording, thread-private
//!   [`MetricsShard`]s merged via [`MetricsRegistry::absorb`], and
//!   Prometheus / JSONL exporters.
//!
//! See DESIGN.md §9 for the architecture and the overhead budget.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{DecisionEvent, Outcome, RejectReason, SitePlacement, TraceEvent};
pub use json::{parse_line, parse_trace, parse_value, to_json, JsonValue, ParseError};
pub use metrics::{
    DecisionMetricIds, MetricId, MetricsRegistry, MetricsShard, MetricsSink, DUAL_COST_BUCKETS,
};
pub use sink::{JsonlSink, NoopSink, RingSink, TraceSink};
