//! Named metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Two usage modes share one namespace:
//!
//! - **Direct recording** through `&MetricsRegistry` uses relaxed atomics
//!   (plain `fetch_add` for counters, a CAS loop over f64 bit patterns for
//!   sums/gauges) — lock-free on the hot path, safe to share across the
//!   scoped threads spawned by `mec_sim::parallel_map`.
//! - **Shard-and-merge**: each worker records into a private, allocation-
//!   free [`MetricsShard`] of plain integers and merges once at the end
//!   via [`MetricsRegistry::absorb`], so tight Monte-Carlo loops never
//!   touch shared cache lines.
//!
//! Exporters: [`MetricsRegistry::to_prometheus`] (text exposition format)
//! and [`MetricsRegistry::to_jsonl`] (one series per line).
//!
//! Series names may embed Prometheus-style labels, e.g.
//! `vnfrel_rejections_total{reason="payment-test"}`; the metric *family*
//! is the part before `{` and `# HELP`/`# TYPE` headers are emitted once
//! per family.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{Outcome, RejectReason, TraceEvent};
use crate::sink::{NoopSink, TraceSink};

/// Handle to a registered series. Cheap to copy; only valid for the
/// registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum State {
    Counter(AtomicU64),
    /// f64 stored as its bit pattern.
    Gauge(AtomicU64),
    Histogram {
        /// One count per finite upper bound, plus a trailing +Inf bucket.
        buckets: Vec<AtomicU64>,
        /// f64 bit pattern of the running sum.
        sum_bits: AtomicU64,
        count: AtomicU64,
    },
}

#[derive(Debug)]
struct Metric {
    name: String,
    help: String,
    kind: Kind,
    /// Finite upper bounds, ascending. Empty unless histogram.
    bounds: Vec<f64>,
    state: State,
}

fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Registry of named series. Registration needs `&mut self`; recording
/// only needs `&self` and is lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn register(&mut self, name: &str, help: &str, kind: Kind, bounds: Vec<f64>) -> MetricId {
        assert!(
            !self.metrics.iter().any(|m| m.name == name),
            "duplicate metric name {name:?}"
        );
        let state = match kind {
            Kind::Counter => State::Counter(AtomicU64::new(0)),
            Kind::Gauge => State::Gauge(AtomicU64::new(0f64.to_bits())),
            Kind::Histogram => State::Histogram {
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            },
        };
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            bounds,
            state,
        });
        MetricId(self.metrics.len() - 1)
    }

    /// Registers a monotone counter.
    pub fn register_counter(&mut self, name: &str, help: &str) -> MetricId {
        self.register(name, help, Kind::Counter, Vec::new())
    }

    /// Registers a gauge (last-set f64 value).
    pub fn register_gauge(&mut self, name: &str, help: &str) -> MetricId {
        self.register(name, help, Kind::Gauge, Vec::new())
    }

    /// Registers a histogram with the given ascending finite upper
    /// bounds; a `+Inf` bucket is always appended.
    pub fn register_histogram(&mut self, name: &str, help: &str, bounds: &[f64]) -> MetricId {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        self.register(name, help, Kind::Histogram, bounds.to_vec())
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&self, id: MetricId, delta: u64) {
        match &self.metrics[id.0].state {
            State::Counter(v) => {
                v.fetch_add(delta, Ordering::Relaxed);
            }
            _ => panic!("metric {:?} is not a counter", self.metrics[id.0].name),
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&self, id: MetricId, value: f64) {
        match &self.metrics[id.0].state {
            State::Gauge(bits) => bits.store(value.to_bits(), Ordering::Relaxed),
            _ => panic!("metric {:?} is not a gauge", self.metrics[id.0].name),
        }
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&self, id: MetricId, value: f64) {
        let metric = &self.metrics[id.0];
        match &metric.state {
            State::Histogram {
                buckets,
                sum_bits,
                count,
            } => {
                let idx = bucket_index(&metric.bounds, value);
                buckets[idx].fetch_add(1, Ordering::Relaxed);
                atomic_f64_add(sum_bits, value);
                count.fetch_add(1, Ordering::Relaxed);
            }
            _ => panic!("metric {:?} is not a histogram", metric.name),
        }
    }

    /// Current counter value.
    pub fn counter_value(&self, id: MetricId) -> u64 {
        match &self.metrics[id.0].state {
            State::Counter(v) => v.load(Ordering::Relaxed),
            _ => panic!("metric {:?} is not a counter", self.metrics[id.0].name),
        }
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: MetricId) -> f64 {
        match &self.metrics[id.0].state {
            State::Gauge(bits) => f64::from_bits(bits.load(Ordering::Relaxed)),
            _ => panic!("metric {:?} is not a gauge", self.metrics[id.0].name),
        }
    }

    /// Histogram totals: (per-bucket counts incl. +Inf, sum, count).
    pub fn histogram_value(&self, id: MetricId) -> (Vec<u64>, f64, u64) {
        match &self.metrics[id.0].state {
            State::Histogram {
                buckets,
                sum_bits,
                count,
            } => (
                buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                f64::from_bits(sum_bits.load(Ordering::Relaxed)),
                count.load(Ordering::Relaxed),
            ),
            _ => panic!("metric {:?} is not a histogram", self.metrics[id.0].name),
        }
    }

    /// Creates a private shard mirroring the currently registered series.
    ///
    /// Gauge slots start *unset* (`None`), not at `0.0`: a shard that
    /// never touches a gauge must not clobber the registry's value when
    /// absorbed. See [`MetricsRegistry::absorb`] for the full gauge
    /// merge semantics.
    pub fn shard(&self) -> MetricsShard {
        MetricsShard {
            slots: self
                .metrics
                .iter()
                .map(|m| match m.kind {
                    Kind::Counter => ShardSlot::Counter(0),
                    Kind::Gauge => ShardSlot::Gauge(None),
                    Kind::Histogram => ShardSlot::Histogram {
                        buckets: vec![0; m.bounds.len() + 1],
                        sum: 0.0,
                        count: 0,
                    },
                })
                .collect(),
        }
    }

    /// Merges a shard's accumulated values into the registry. The shard
    /// is left untouched and may be reused (counts would then be double
    /// absorbed — reset or drop it instead).
    ///
    /// Merge semantics per kind:
    ///
    /// - **Counters / histograms** are additive: deltas sum into the
    ///   registry, so absorb order never matters.
    /// - **Gauges** are *last-writer-wins*: a gauge the shard never set
    ///   stays `None` and leaves the registry value untouched, while a
    ///   set gauge overwrites the registry unconditionally. When several
    ///   shards set the same gauge, the value after all absorbs is the
    ///   one from the shard absorbed **last** — not the largest, not the
    ///   latest `set_gauge` call across threads. Callers that need a
    ///   deterministic winner must absorb shards in a deterministic
    ///   order (as `parallel_map`'s index-ordered merge does); gauges
    ///   that should reflect a global property (e.g. final utilization)
    ///   are better set directly on the registry after the merge.
    ///
    /// The regression tests `gauge_unset_in_shard_does_not_clobber` and
    /// `gauge_absorb_is_last_writer_wins` pin this behaviour.
    pub fn absorb(&self, shard: &MetricsShard) {
        assert_eq!(
            shard.slots.len(),
            self.metrics.len(),
            "shard was created from a different registry snapshot"
        );
        for (metric, slot) in self.metrics.iter().zip(&shard.slots) {
            match (&metric.state, slot) {
                (State::Counter(v), ShardSlot::Counter(delta)) => {
                    if *delta != 0 {
                        v.fetch_add(*delta, Ordering::Relaxed);
                    }
                }
                (State::Gauge(bits), ShardSlot::Gauge(value)) => {
                    if let Some(v) = value {
                        bits.store(v.to_bits(), Ordering::Relaxed);
                    }
                }
                (
                    State::Histogram {
                        buckets,
                        sum_bits,
                        count,
                    },
                    ShardSlot::Histogram {
                        buckets: shard_buckets,
                        sum,
                        count: shard_count,
                    },
                ) => {
                    if *shard_count == 0 {
                        continue;
                    }
                    for (cell, delta) in buckets.iter().zip(shard_buckets) {
                        if *delta != 0 {
                            cell.fetch_add(*delta, Ordering::Relaxed);
                        }
                    }
                    atomic_f64_add(sum_bits, *sum);
                    count.fetch_add(*shard_count, Ordering::Relaxed);
                }
                _ => unreachable!("shard slot kind mismatch"),
            }
        }
    }

    /// Renders every series in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut seen_families: Vec<&str> = Vec::new();
        for metric in &self.metrics {
            let family = family_of(&metric.name);
            if !seen_families.contains(&family) {
                seen_families.push(family);
                let _ = writeln!(out, "# HELP {family} {}", metric.help);
                let _ = writeln!(out, "# TYPE {family} {}", metric.kind.as_str());
            }
            match &metric.state {
                State::Counter(v) => {
                    let _ = writeln!(out, "{} {}", metric.name, v.load(Ordering::Relaxed));
                }
                State::Gauge(bits) => {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        metric.name,
                        f64::from_bits(bits.load(Ordering::Relaxed))
                    );
                }
                State::Histogram {
                    buckets,
                    sum_bits,
                    count,
                } => {
                    let mut cumulative = 0u64;
                    for (i, cell) in buckets.iter().enumerate() {
                        cumulative += cell.load(Ordering::Relaxed);
                        let le = metric
                            .bounds
                            .get(i)
                            .map(|b| format!("{b}"))
                            .unwrap_or_else(|| "+Inf".to_string());
                        let _ = writeln!(
                            out,
                            "{} {cumulative}",
                            with_label(&metric.name, "_bucket", &format!("le=\"{le}\""))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        suffixed(&metric.name, "_sum"),
                        f64::from_bits(sum_bits.load(Ordering::Relaxed))
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        suffixed(&metric.name, "_count"),
                        count.load(Ordering::Relaxed)
                    );
                }
            }
        }
        out
    }

    /// Renders every series as one JSON object per line.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for metric in &self.metrics {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\"",
                metric.name.replace('\\', "\\\\").replace('"', "\\\""),
                metric.kind.as_str()
            );
            match &metric.state {
                State::Counter(v) => {
                    let _ = write!(out, ",\"value\":{}", v.load(Ordering::Relaxed));
                }
                State::Gauge(bits) => {
                    let v = f64::from_bits(bits.load(Ordering::Relaxed));
                    if v.is_finite() {
                        let _ = write!(out, ",\"value\":{v:?}");
                    } else {
                        let _ = write!(out, ",\"value\":null");
                    }
                }
                State::Histogram {
                    buckets,
                    sum_bits,
                    count,
                } => {
                    let _ = write!(out, ",\"le\":[");
                    for (i, b) in metric.bounds.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ",");
                        }
                        let _ = write!(out, "{b:?}");
                    }
                    if !metric.bounds.is_empty() {
                        let _ = write!(out, ",");
                    }
                    let _ = write!(out, "null],\"counts\":[");
                    for (i, cell) in buckets.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ",");
                        }
                        let _ = write!(out, "{}", cell.load(Ordering::Relaxed));
                    }
                    let sum = f64::from_bits(sum_bits.load(Ordering::Relaxed));
                    let _ = write!(out, "],\"sum\":");
                    if sum.is_finite() {
                        let _ = write!(out, "{sum:?}");
                    } else {
                        let _ = write!(out, "null");
                    }
                    let _ = write!(out, ",\"count\":{}", count.load(Ordering::Relaxed));
                }
            }
            let _ = writeln!(out, "}}");
        }
        out
    }
}

fn bucket_index(bounds: &[f64], value: f64) -> usize {
    bounds
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(bounds.len())
}

fn family_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// `name{a="b"}` + suffix → `name_suffix{a="b"}`.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{suffix}{}", &name[..i], &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

/// Like [`suffixed`] but also splices an extra label into the label set.
fn with_label(name: &str, suffix: &str, label: &str) -> String {
    match name.find('{') {
        Some(i) => {
            let base = &name[..i];
            let labels = &name[i + 1..name.len() - 1];
            format!("{base}{suffix}{{{labels},{label}}}")
        }
        None => format!("{name}{suffix}{{{label}}}"),
    }
}

#[derive(Debug, Clone)]
enum ShardSlot {
    Counter(u64),
    Gauge(Option<f64>),
    Histogram {
        buckets: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

/// Thread-private mirror of a registry: plain integers, no atomics, no
/// allocation after construction. Create with [`MetricsRegistry::shard`],
/// record freely inside a worker, then merge once with
/// [`MetricsRegistry::absorb`].
#[derive(Debug, Clone)]
pub struct MetricsShard {
    slots: Vec<ShardSlot>,
}

impl MetricsShard {
    /// Adds `delta` to a counter slot.
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: u64) {
        match &mut self.slots[id.0] {
            ShardSlot::Counter(v) => *v += delta,
            _ => panic!("shard slot is not a counter"),
        }
    }

    /// Increments a counter slot by one.
    #[inline]
    pub fn inc(&mut self, id: MetricId) {
        self.add(id, 1);
    }

    /// Sets a gauge slot, marking it *set* — from now on absorbing this
    /// shard overwrites the registry's gauge (last absorb wins across
    /// shards; see [`MetricsRegistry::absorb`]). Repeated sets on the
    /// same shard keep only the latest value.
    #[inline]
    pub fn set_gauge(&mut self, id: MetricId, value: f64) {
        match &mut self.slots[id.0] {
            ShardSlot::Gauge(v) => *v = Some(value),
            _ => panic!("shard slot is not a gauge"),
        }
    }

    /// Records one histogram observation. `bounds` must be the same
    /// slice the histogram was registered with.
    #[inline]
    pub fn observe(&mut self, id: MetricId, bounds: &[f64], value: f64) {
        match &mut self.slots[id.0] {
            ShardSlot::Histogram {
                buckets,
                sum,
                count,
            } => {
                debug_assert_eq!(buckets.len(), bounds.len() + 1);
                buckets[bucket_index(bounds, value)] += 1;
                *sum += value;
                *count += 1;
            }
            _ => panic!("shard slot is not a histogram"),
        }
    }
}

// ---------------------------------------------------------------------------
// Decision-event adapter
// ---------------------------------------------------------------------------

/// Default bucket bounds for dual-cost style distributions (payments in
/// the evaluation run up to ~10).
pub const DUAL_COST_BUCKETS: [f64; 9] = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Pre-registered series for decision telemetry, shared by the CLI and
/// the simulation engine.
#[derive(Debug, Clone, Copy)]
pub struct DecisionMetricIds {
    /// `vnfrel_admissions_total`
    pub admitted: MetricId,
    /// `vnfrel_rejections_total`
    pub rejected: MetricId,
    /// One labelled counter per [`RejectReason`], in `RejectReason::ALL`
    /// order.
    pub reject_by_reason: [MetricId; RejectReason::ALL.len()],
    /// `vnfrel_dual_cost` histogram over admitted requests.
    pub dual_cost: MetricId,
}

impl DecisionMetricIds {
    /// Registers the standard decision series.
    pub fn register(reg: &mut MetricsRegistry) -> Self {
        let admitted = reg.register_counter(
            "vnfrel_admissions_total",
            "Requests admitted by the scheduler",
        );
        let rejected = reg.register_counter(
            "vnfrel_rejections_total",
            "Requests rejected by the scheduler",
        );
        let reject_by_reason = RejectReason::ALL.map(|reason| {
            reg.register_counter(
                &format!(
                    "vnfrel_rejections_by_reason_total{{reason=\"{}\"}}",
                    reason.as_str()
                ),
                "Requests rejected, by classified reason",
            )
        });
        let dual_cost = reg.register_histogram(
            "vnfrel_dual_cost",
            "Dual (resource) cost of admitted requests",
            &DUAL_COST_BUCKETS,
        );
        DecisionMetricIds {
            admitted,
            rejected,
            reject_by_reason,
            dual_cost,
        }
    }

    fn reason_id(&self, reason: RejectReason) -> MetricId {
        let idx = RejectReason::ALL
            .iter()
            .position(|&r| r == reason)
            .expect("reason in ALL");
        self.reject_by_reason[idx]
    }
}

/// A [`TraceSink`] that folds decision events into a registry and then
/// forwards every event to an inner sink (default: drop).
#[derive(Debug)]
pub struct MetricsSink<'r, S: TraceSink = NoopSink> {
    registry: &'r MetricsRegistry,
    ids: DecisionMetricIds,
    inner: S,
}

impl<'r> MetricsSink<'r, NoopSink> {
    /// Metrics only, no forwarding.
    pub fn new(registry: &'r MetricsRegistry, ids: DecisionMetricIds) -> Self {
        MetricsSink {
            registry,
            ids,
            inner: NoopSink,
        }
    }
}

impl<'r, S: TraceSink> MetricsSink<'r, S> {
    /// Metrics plus forwarding to `inner` (e.g. a [`crate::JsonlSink`]).
    pub fn with_inner(registry: &'r MetricsRegistry, ids: DecisionMetricIds, inner: S) -> Self {
        MetricsSink {
            registry,
            ids,
            inner,
        }
    }

    /// Returns the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for MetricsSink<'_, S> {
    fn record(&mut self, event: TraceEvent) {
        if let TraceEvent::Decision(d) = &event {
            match &d.outcome {
                Outcome::Admit { dual_cost, .. } => {
                    self.registry.inc(self.ids.admitted);
                    self.registry.observe(self.ids.dual_cost, *dual_cost);
                }
                Outcome::Reject { reason, .. } => {
                    self.registry.inc(self.ids.rejected);
                    self.registry.inc(self.ids.reason_id(*reason));
                }
            }
        }
        if S::ENABLED {
            self.inner.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("c_total", "a counter");
        let g = reg.register_gauge("g", "a gauge");
        reg.inc(c);
        reg.add(c, 4);
        reg.set_gauge(g, 2.5);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.gauge_value(g), 2.5);
    }

    #[test]
    fn histogram_buckets_and_prometheus_output() {
        let mut reg = MetricsRegistry::new();
        let h = reg.register_histogram("lat", "latency", &[1.0, 2.0]);
        reg.observe(h, 0.5);
        reg.observe(h, 1.5);
        reg.observe(h, 99.0);
        let (buckets, sum, count) = reg.histogram_value(h);
        assert_eq!(buckets, vec![1, 1, 1]);
        assert_eq!(count, 3);
        assert!((sum - 101.0).abs() < 1e-12);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE lat histogram"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_count 3"), "{text}");
    }

    #[test]
    fn labelled_family_emits_one_header() {
        let mut reg = MetricsRegistry::new();
        reg.register_counter("r_total{reason=\"a\"}", "rejections");
        reg.register_counter("r_total{reason=\"b\"}", "rejections");
        let text = reg.to_prometheus();
        assert_eq!(text.matches("# TYPE r_total counter").count(), 1, "{text}");
        assert!(text.contains("r_total{reason=\"a\"} 0"), "{text}");
    }

    #[test]
    fn shard_absorb_matches_direct_recording() {
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("c_total", "c");
        let g = reg.register_gauge("g", "g");
        let h = reg.register_histogram("h", "h", &[1.0]);
        let mut shard = reg.shard();
        shard.inc(c);
        shard.add(c, 2);
        shard.set_gauge(g, 7.0);
        shard.observe(h, &[1.0], 0.5);
        shard.observe(h, &[1.0], 5.0);
        reg.absorb(&shard);
        assert_eq!(reg.counter_value(c), 3);
        assert_eq!(reg.gauge_value(g), 7.0);
        let (buckets, sum, count) = reg.histogram_value(h);
        assert_eq!(buckets, vec![1, 1]);
        assert_eq!(count, 2);
        assert!((sum - 5.5).abs() < 1e-12);
    }

    #[test]
    fn gauge_unset_in_shard_does_not_clobber() {
        // Regression: shards start gauges at `None`, so absorbing a
        // shard that recorded only counters must keep the registry's
        // directly-set gauge value instead of resetting it to 0.
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("c_total", "c");
        let g = reg.register_gauge("g", "g");
        reg.set_gauge(g, 42.0);
        let mut shard = reg.shard();
        shard.inc(c);
        reg.absorb(&shard);
        assert_eq!(reg.gauge_value(g), 42.0, "unset shard gauge clobbered");
        assert_eq!(reg.counter_value(c), 1);
    }

    #[test]
    fn gauge_absorb_is_last_writer_wins() {
        // Regression: when several shards set the same gauge, the value
        // after all absorbs is the one from the shard absorbed last —
        // absorb order, not set_gauge call order, decides.
        let mut reg = MetricsRegistry::new();
        let g = reg.register_gauge("g", "g");
        let mut a = reg.shard();
        let mut b = reg.shard();
        a.set_gauge(g, 1.0);
        b.set_gauge(g, 2.0);
        // `b` set later, but `a` absorbed later → `a` wins.
        reg.absorb(&b);
        reg.absorb(&a);
        assert_eq!(reg.gauge_value(g), 1.0);
        // Repeated sets on one shard keep only the latest value.
        let mut c = reg.shard();
        c.set_gauge(g, 5.0);
        c.set_gauge(g, 9.0);
        reg.absorb(&c);
        assert_eq!(reg.gauge_value(g), 9.0);
        // And a later absorb of an unset shard leaves the winner alone.
        let d = reg.shard();
        reg.absorb(&d);
        assert_eq!(reg.gauge_value(g), 9.0);
    }

    #[test]
    fn shards_merge_from_threads() {
        let mut reg = MetricsRegistry::new();
        let c = reg.register_counter("c_total", "c");
        let reg = &reg;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut shard = reg.shard();
                    for _ in 0..1000 {
                        shard.inc(c);
                    }
                    reg.absorb(&shard);
                });
            }
        });
        assert_eq!(reg.counter_value(c), 4000);
    }

    #[test]
    fn metrics_sink_classifies_decisions() {
        use crate::event::{DecisionEvent, SitePlacement};
        let mut reg = MetricsRegistry::new();
        let ids = DecisionMetricIds::register(&mut reg);
        let mut sink = MetricsSink::new(&reg, ids);
        sink.record(TraceEvent::Decision(DecisionEvent {
            request: 0,
            algorithm: "alg1-onsite".into(),
            scheme: "onsite".into(),
            slot: 0,
            payment: 5.0,
            outcome: Outcome::Admit {
                dual_cost: 1.0,
                margin: 4.0,
                sites: vec![SitePlacement {
                    cloudlet: 0,
                    instances: 2,
                    dual_cost: 1.0,
                }],
            },
        }));
        sink.record(TraceEvent::Decision(DecisionEvent {
            request: 1,
            algorithm: "alg1-onsite".into(),
            scheme: "onsite".into(),
            slot: 0,
            payment: 0.1,
            outcome: Outcome::Reject {
                reason: RejectReason::PaymentTest,
                dual_cost: Some(0.5),
                margin: Some(-0.4),
            },
        }));
        assert_eq!(reg.counter_value(ids.admitted), 1);
        assert_eq!(reg.counter_value(ids.rejected), 1);
        assert_eq!(
            reg.counter_value(ids.reason_id(RejectReason::PaymentTest)),
            1
        );
        let (_, _, count) = reg.histogram_value(ids.dual_cost);
        assert_eq!(count, 1);
    }
}
