//! Typed trace events emitted by the scheduling pipeline.
//!
//! One [`TraceEvent::Decision`] is emitted per scheduler `decide()` call;
//! the fault-injection engine additionally emits outage, kill, SLA-breach
//! and recovery events. The JSONL wire format lives in [`crate::json`].

/// Why a request was rejected.
///
/// Each variant corresponds to a concrete exit path in one of the four
/// schedulers; the golden tests in `tests/trace_obs.rs` assert every
/// variant is reachable by a crafted scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The final payment test `pay_i − cost > 0` failed: the dual
    /// (resource) cost of the best candidate placement exceeds what the
    /// request pays.
    PaymentTest,
    /// No placement can meet the reliability requirement `R_i` — on-site:
    /// no cloudlet with `r(c_j) > R_i` survives the instance ladder;
    /// off-site: the accumulated `ln(1 − r_f · r(c_j))` mass of all usable
    /// cloudlets cannot reach `ln(1 − R_i)`.
    ReliabilityInfeasible,
    /// A capacity gate (Enforce / Scaled policy) refused every otherwise
    /// eligible cloudlet: the dual price says the cloudlet is too full.
    CapacityGate,
    /// The doomed-payment short-circuit: even the cheapest possible
    /// placement already costs more than the payment, so the scheduler
    /// bailed out before scanning candidates. A sub-case of the payment
    /// test, kept distinct so the fast path is visible in traces.
    DoomedShortCircuit,
    /// The request names a VNF type absent from the catalog.
    UnknownVnf,
}

impl RejectReason {
    /// Stable wire name used in the JSONL schema and Prometheus labels.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::PaymentTest => "payment-test",
            RejectReason::ReliabilityInfeasible => "reliability-infeasible",
            RejectReason::CapacityGate => "capacity-gate",
            RejectReason::DoomedShortCircuit => "doomed-short-circuit",
            RejectReason::UnknownVnf => "unknown-vnf",
        }
    }

    /// Inverse of [`RejectReason::as_str`].
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "payment-test" => RejectReason::PaymentTest,
            "reliability-infeasible" => RejectReason::ReliabilityInfeasible,
            "capacity-gate" => RejectReason::CapacityGate,
            "doomed-short-circuit" => RejectReason::DoomedShortCircuit,
            "unknown-vnf" => RejectReason::UnknownVnf,
            _ => return None,
        })
    }

    /// All variants, in wire order. Used by exporters to pre-register one
    /// counter per reason and by the golden tests for coverage.
    pub const ALL: [RejectReason; 5] = [
        RejectReason::PaymentTest,
        RejectReason::ReliabilityInfeasible,
        RejectReason::CapacityGate,
        RejectReason::DoomedShortCircuit,
        RejectReason::UnknownVnf,
    ];
}

/// One selected cloudlet within an admission.
///
/// On-site placements have exactly one site; off-site placements list
/// every cloudlet the primary/backup instances were spread across.
#[derive(Debug, Clone, PartialEq)]
pub struct SitePlacement {
    /// Dense cloudlet id (index into the network's cloudlet list).
    pub cloudlet: usize,
    /// Number of VNF instances placed there (`N_ij` on-site, 1 off-site).
    pub instances: u32,
    /// Dual cost charged for this site: `weight · Σ_t λ_tj` over the
    /// request's window, normalised by capacity.
    pub dual_cost: f64,
}

/// Whether a request was admitted and at what cost, or rejected and why.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The request was admitted.
    Admit {
        /// Total dual cost across all selected sites.
        dual_cost: f64,
        /// The admission margin the payment test compared against zero —
        /// `pay_i − cost` for Algorithm 1, `δ_i` for Algorithm 2, and the
        /// raw payment for the payment-oblivious greedy baselines.
        margin: f64,
        /// The chosen cloudlet(s) with per-site instance counts and costs.
        sites: Vec<SitePlacement>,
    },
    /// The request was rejected.
    Reject {
        /// The classified exit path.
        reason: RejectReason,
        /// Dual cost of the best candidate considered, when one was
        /// evaluated before rejecting (absent for e.g. unknown-VNF).
        dual_cost: Option<f64>,
        /// Margin of the failed test, when one was computed.
        margin: Option<f64>,
    },
}

impl Outcome {
    /// True for [`Outcome::Admit`].
    pub fn is_admit(&self) -> bool {
        matches!(self, Outcome::Admit { .. })
    }
}

/// One scheduling decision, fully explained.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Dense request id.
    pub request: usize,
    /// Scheduler name, e.g. `alg1-onsite` (matches `OnlineScheduler::name`).
    pub algorithm: String,
    /// `onsite` or `offsite`.
    pub scheme: String,
    /// Arrival slot of the request.
    pub slot: usize,
    /// The request's payment `pay_i`.
    pub payment: f64,
    /// Admission or classified rejection.
    pub outcome: Outcome,
}

/// A structured event on the trace stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One scheduler `decide()` call.
    Decision(DecisionEvent),
    /// A cloudlet outage began at `slot` (fault injection).
    OutageStart {
        /// Slot at which the outage takes effect.
        slot: usize,
        /// Dense cloudlet id.
        cloudlet: usize,
    },
    /// A cloudlet outage ended at `slot`.
    OutageEnd {
        /// Slot at which the cloudlet comes back up.
        slot: usize,
        /// Dense cloudlet id.
        cloudlet: usize,
    },
    /// A single request's instances on one cloudlet were killed.
    InstanceKill {
        /// Slot of the kill.
        slot: usize,
        /// Dense cloudlet id the instances were running on.
        cloudlet: usize,
        /// Dense request id whose instances were killed.
        request: usize,
    },
    /// An admitted request dropped below its reliability target and the
    /// SLA clock started (or a final breach was recorded).
    SlaBreach {
        /// Slot of the breach.
        slot: usize,
        /// Dense request id.
        request: usize,
    },
    /// A recovery (re-placement) attempt for a failed request.
    Recovery {
        /// Slot of the attempt.
        slot: usize,
        /// Dense request id.
        request: usize,
        /// Whether a replacement placement was found and charged.
        success: bool,
        /// Cloudlets of the replacement placement (empty on failure).
        cloudlets: Vec<usize>,
    },
    /// A whole failure domain (shared-risk group) crashed: every member
    /// cloudlet went down atomically.
    DomainOutageStart {
        /// Slot at which the domain outage takes effect.
        slot: usize,
        /// Dense failure-domain id.
        domain: usize,
        /// Member cloudlets taken down with the domain.
        cloudlets: Vec<usize>,
    },
    /// A failure domain finished repair.
    DomainOutageEnd {
        /// Slot at which the domain comes back.
        slot: usize,
        /// Dense failure-domain id.
        domain: usize,
    },
    /// A surviving cloudlet cascaded: its post-outage utilization crossed
    /// the cascade threshold and the pre-drawn hazard fired.
    Cascade {
        /// Slot of the secondary outage.
        slot: usize,
        /// Dense cloudlet id that cascaded.
        cloudlet: usize,
        /// Utilization fraction that put the cloudlet at risk.
        utilization: f64,
    },
    /// The load-shedder evicted a retained request to free capacity for
    /// a higher-density re-placement.
    Eviction {
        /// Slot of the eviction.
        slot: usize,
        /// Dense request id evicted.
        request: usize,
        /// Payment density (`pay / (duration · demand)`) at eviction —
        /// evictions happen in ascending density order.
        density: f64,
    },
    /// The engine entered degraded mode: admissions now reserve capacity
    /// headroom until every domain repairs.
    DegradedEnter {
        /// Slot degraded mode began.
        slot: usize,
    },
    /// The engine left degraded mode.
    DegradedExit {
        /// Slot normal admission resumed.
        slot: usize,
    },
    /// The runtime invariant auditor observed a violation (the run
    /// continues; violations are reported, not panicked on).
    AuditViolation {
        /// Slot the violation was detected in.
        slot: usize,
        /// Stable name of the violated invariant.
        invariant: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A standby admission daemon was promoted to primary: it drained
    /// the replication channel and opened a new fencing epoch.
    Promotion {
        /// The new (post-promotion) epoch.
        epoch: u64,
        /// Replication log entries applied before promotion.
        seq: u64,
    },
    /// A replication peer with a stale epoch was refused (fencing): its
    /// frames were not applied and it must stop acking admissions.
    Fenced {
        /// The refusing node's current epoch.
        epoch: u64,
        /// The stale epoch the refused peer presented.
        stale_epoch: u64,
    },
    /// A follower imported a full state snapshot to catch up with the
    /// primary's replication stream.
    ReplCatchup {
        /// Epoch of the snapshot.
        epoch: u64,
        /// Replication log position the snapshot covers.
        seq: u64,
    },
}

impl TraceEvent {
    /// Stable `"type"` discriminator used in the JSONL schema.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Decision(_) => "decision",
            TraceEvent::OutageStart { .. } => "outage-start",
            TraceEvent::OutageEnd { .. } => "outage-end",
            TraceEvent::InstanceKill { .. } => "instance-kill",
            TraceEvent::SlaBreach { .. } => "sla-breach",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::DomainOutageStart { .. } => "domain-outage-start",
            TraceEvent::DomainOutageEnd { .. } => "domain-outage-end",
            TraceEvent::Cascade { .. } => "cascade",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::DegradedEnter { .. } => "degraded-enter",
            TraceEvent::DegradedExit { .. } => "degraded-exit",
            TraceEvent::AuditViolation { .. } => "audit-violation",
            TraceEvent::Promotion { .. } => "promotion",
            TraceEvent::Fenced { .. } => "fenced",
            TraceEvent::ReplCatchup { .. } => "repl-catchup",
        }
    }

    /// The request id the event concerns, if any.
    pub fn request(&self) -> Option<usize> {
        match self {
            TraceEvent::Decision(d) => Some(d.request),
            TraceEvent::InstanceKill { request, .. }
            | TraceEvent::SlaBreach { request, .. }
            | TraceEvent::Recovery { request, .. }
            | TraceEvent::Eviction { request, .. } => Some(*request),
            TraceEvent::OutageStart { .. }
            | TraceEvent::OutageEnd { .. }
            | TraceEvent::DomainOutageStart { .. }
            | TraceEvent::DomainOutageEnd { .. }
            | TraceEvent::Cascade { .. }
            | TraceEvent::DegradedEnter { .. }
            | TraceEvent::DegradedExit { .. }
            | TraceEvent::AuditViolation { .. }
            | TraceEvent::Promotion { .. }
            | TraceEvent::Fenced { .. }
            | TraceEvent::ReplCatchup { .. } => None,
        }
    }
}
