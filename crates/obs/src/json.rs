//! Hand-rolled JSONL serialization for [`TraceEvent`], plus a small
//! generic [`JsonValue`] tree used by the `mec-serve` wire protocol and
//! snapshot files.
//!
//! The workspace deliberately carries no serde dependency, so the wire
//! format is produced and consumed by a few hundred lines of plain std
//! code. The schema is versioned by field names only; the round-trip
//! test in `tests/trace_obs.rs` pins it for downstream tooling.
//!
//! Conventions:
//! - one event per line, no pretty printing;
//! - every object carries a `"type"` discriminator (see
//!   [`TraceEvent::kind`]);
//! - non-finite floats serialize as `null` (JSON has no NaN/Inf), and
//!   `null` parses back as NaN for required float fields;
//! - finite floats are written with `{:?}` — the shortest representation
//!   that round-trips — so encode→parse restores the exact bit pattern
//!   (this is what makes snapshot/restore byte-identical downstream).

use std::fmt::Write as _;

use crate::event::{DecisionEvent, Outcome, RejectReason, SitePlacement, TraceEvent};

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_sites(out: &mut String, sites: &[SitePlacement]) {
    out.push('[');
    for (i, s) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"cloudlet\":{},\"instances\":{},\"dual_cost\":",
            s.cloudlet, s.instances
        );
        push_f64(out, s.dual_cost);
        out.push('}');
    }
    out.push(']');
}

/// Serializes one event as a single JSON line (no trailing newline).
pub fn to_json(event: &TraceEvent) -> String {
    let mut out = String::with_capacity(128);
    match event {
        TraceEvent::Decision(d) => {
            out.push_str("{\"type\":\"decision\",\"request\":");
            let _ = write!(out, "{}", d.request);
            out.push_str(",\"algorithm\":");
            push_str(&mut out, &d.algorithm);
            out.push_str(",\"scheme\":");
            push_str(&mut out, &d.scheme);
            let _ = write!(out, ",\"slot\":{},\"payment\":", d.slot);
            push_f64(&mut out, d.payment);
            match &d.outcome {
                Outcome::Admit {
                    dual_cost,
                    margin,
                    sites,
                } => {
                    out.push_str(",\"outcome\":\"admit\",\"dual_cost\":");
                    push_f64(&mut out, *dual_cost);
                    out.push_str(",\"margin\":");
                    push_f64(&mut out, *margin);
                    out.push_str(",\"sites\":");
                    push_sites(&mut out, sites);
                }
                Outcome::Reject {
                    reason,
                    dual_cost,
                    margin,
                } => {
                    out.push_str(",\"outcome\":\"reject\",\"reason\":");
                    push_str(&mut out, reason.as_str());
                    out.push_str(",\"dual_cost\":");
                    push_opt_f64(&mut out, *dual_cost);
                    out.push_str(",\"margin\":");
                    push_opt_f64(&mut out, *margin);
                }
            }
            out.push('}');
        }
        TraceEvent::OutageStart { slot, cloudlet } => {
            let _ = write!(
                out,
                "{{\"type\":\"outage-start\",\"slot\":{slot},\"cloudlet\":{cloudlet}}}"
            );
        }
        TraceEvent::OutageEnd { slot, cloudlet } => {
            let _ = write!(
                out,
                "{{\"type\":\"outage-end\",\"slot\":{slot},\"cloudlet\":{cloudlet}}}"
            );
        }
        TraceEvent::InstanceKill {
            slot,
            cloudlet,
            request,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"instance-kill\",\"slot\":{slot},\"cloudlet\":{cloudlet},\"request\":{request}}}"
            );
        }
        TraceEvent::SlaBreach { slot, request } => {
            let _ = write!(
                out,
                "{{\"type\":\"sla-breach\",\"slot\":{slot},\"request\":{request}}}"
            );
        }
        TraceEvent::Recovery {
            slot,
            request,
            success,
            cloudlets,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"recovery\",\"slot\":{slot},\"request\":{request},\"success\":{success},\"cloudlets\":["
            );
            for (i, c) in cloudlets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        TraceEvent::DomainOutageStart {
            slot,
            domain,
            cloudlets,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"domain-outage-start\",\"slot\":{slot},\"domain\":{domain},\"cloudlets\":["
            );
            for (i, c) in cloudlets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        TraceEvent::DomainOutageEnd { slot, domain } => {
            let _ = write!(
                out,
                "{{\"type\":\"domain-outage-end\",\"slot\":{slot},\"domain\":{domain}}}"
            );
        }
        TraceEvent::Cascade {
            slot,
            cloudlet,
            utilization,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"cascade\",\"slot\":{slot},\"cloudlet\":{cloudlet},\"utilization\":"
            );
            push_f64(&mut out, *utilization);
            out.push('}');
        }
        TraceEvent::Eviction {
            slot,
            request,
            density,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"eviction\",\"slot\":{slot},\"request\":{request},\"density\":"
            );
            push_f64(&mut out, *density);
            out.push('}');
        }
        TraceEvent::DegradedEnter { slot } => {
            let _ = write!(out, "{{\"type\":\"degraded-enter\",\"slot\":{slot}}}");
        }
        TraceEvent::DegradedExit { slot } => {
            let _ = write!(out, "{{\"type\":\"degraded-exit\",\"slot\":{slot}}}");
        }
        TraceEvent::AuditViolation {
            slot,
            invariant,
            detail,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"audit-violation\",\"slot\":{slot},\"invariant\":"
            );
            push_str(&mut out, invariant);
            out.push_str(",\"detail\":");
            push_str(&mut out, detail);
            out.push('}');
        }
        TraceEvent::Promotion { epoch, seq } => {
            let _ = write!(
                out,
                "{{\"type\":\"promotion\",\"epoch\":{epoch},\"seq\":{seq}}}"
            );
        }
        TraceEvent::Fenced { epoch, stale_epoch } => {
            let _ = write!(
                out,
                "{{\"type\":\"fenced\",\"epoch\":{epoch},\"stale_epoch\":{stale_epoch}}}"
            );
        }
        TraceEvent::ReplCatchup { epoch, seq } => {
            let _ = write!(
                out,
                "{{\"type\":\"repl-catchup\",\"epoch\":{epoch},\"seq\":{seq}}}"
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Error produced while parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the line where parsing stopped (best effort).
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// A generic JSON value tree.
///
/// Originally the parser's private intermediate form; exposed so other
/// crates (the `mec-serve` protocol and snapshot codec) can build and
/// inspect ad-hoc JSON without a serde dependency. Object fields keep
/// insertion order; duplicate keys are not rejected ([`JsonValue::get`]
/// returns the first match).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`, like the wire format).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as an ordered list of `(key, value)` fields.
    Obj(Vec<(String, JsonValue)>),
}

/// Internal shorthand — the parser/decoder below predates the public
/// name.
type Json = JsonValue;

impl JsonValue {
    /// Looks up a field of an object (first match); `None` for non-objects.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a JsonValue> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite-or-NaN float: numbers parse as themselves,
    /// `null` as NaN (matching the non-finite-floats-as-`null` encode
    /// convention); anything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a non-negative integer, rejecting fractional numbers.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Appends the compact (single-line) encoding of this value to `out`.
    ///
    /// Finite numbers use the shortest round-tripping representation;
    /// non-finite numbers encode as `null` (and [`JsonValue::as_f64`]
    /// turns `null` back into NaN), matching the trace-event codec.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            // Integral values encode without a decimal point so count
            // fields read as integers on the wire; the bit-pattern check
            // keeps -0.0 (and anything outside i64) on the `{:?}` path,
            // preserving the byte-exact round-trip guarantee.
            Json::Num(n) => {
                let as_int = *n as i64;
                if n.to_bits() == (as_int as f64).to_bits() {
                    let _ = write!(out, "{as_int}");
                } else {
                    push_f64(out, *n);
                }
            }
            Json::Str(s) => push_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str(out, k);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// The compact (single-line) encoding of this value.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.encode_into(&mut out);
        out
    }
}

/// Parses one complete JSON value, rejecting trailing garbage — the
/// generic counterpart of [`parse_line`] for non-trace payloads (the
/// `mec-serve` protocol and snapshot files).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed byte.
pub fn parse_value(text: &str) -> Result<JsonValue, ParseError> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing garbage after JSON value");
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.to_string(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Num(v)),
            Err(_) => self.err("malformed number"),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ParseError {
                            message: "invalid utf-8".to_string(),
                            offset: self.pos,
                        })?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

fn fail(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
        offset: 0,
    }
}

fn as_usize(v: &Json, field: &str) -> Result<usize, ParseError> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
        _ => Err(fail(format!(
            "field '{field}' is not a non-negative integer"
        ))),
    }
}

fn as_f64(v: &Json, field: &str) -> Result<f64, ParseError> {
    match v {
        Json::Num(n) => Ok(*n),
        Json::Null => Ok(f64::NAN),
        _ => Err(fail(format!("field '{field}' is not a number"))),
    }
}

fn as_opt_f64(v: &Json, field: &str) -> Result<Option<f64>, ParseError> {
    match v {
        Json::Num(n) => Ok(Some(*n)),
        Json::Null => Ok(None),
        _ => Err(fail(format!("field '{field}' is not a number or null"))),
    }
}

fn as_str<'a>(v: &'a Json, field: &str) -> Result<&'a str, ParseError> {
    match v {
        Json::Str(s) => Ok(s),
        _ => Err(fail(format!("field '{field}' is not a string"))),
    }
}

fn required<'a>(obj: &'a Json, field: &str) -> Result<&'a Json, ParseError> {
    obj.get(field)
        .ok_or_else(|| fail(format!("missing field '{field}'")))
}

fn decision_from(obj: &Json) -> Result<DecisionEvent, ParseError> {
    let outcome_tag = as_str(required(obj, "outcome")?, "outcome")?;
    let outcome = match outcome_tag {
        "admit" => {
            let sites_json = match required(obj, "sites")? {
                Json::Arr(items) => items,
                _ => return Err(fail("field 'sites' is not an array")),
            };
            let mut sites = Vec::with_capacity(sites_json.len());
            for s in sites_json {
                sites.push(SitePlacement {
                    cloudlet: as_usize(required(s, "cloudlet")?, "cloudlet")?,
                    instances: as_usize(required(s, "instances")?, "instances")? as u32,
                    dual_cost: as_f64(required(s, "dual_cost")?, "dual_cost")?,
                });
            }
            Outcome::Admit {
                dual_cost: as_f64(required(obj, "dual_cost")?, "dual_cost")?,
                margin: as_f64(required(obj, "margin")?, "margin")?,
                sites,
            }
        }
        "reject" => {
            let reason_str = as_str(required(obj, "reason")?, "reason")?;
            let reason = RejectReason::from_wire(reason_str)
                .ok_or_else(|| fail(format!("unknown rejection reason '{reason_str}'")))?;
            Outcome::Reject {
                reason,
                dual_cost: as_opt_f64(required(obj, "dual_cost")?, "dual_cost")?,
                margin: as_opt_f64(required(obj, "margin")?, "margin")?,
            }
        }
        other => return Err(fail(format!("unknown outcome '{other}'"))),
    };
    Ok(DecisionEvent {
        request: as_usize(required(obj, "request")?, "request")?,
        algorithm: as_str(required(obj, "algorithm")?, "algorithm")?.to_string(),
        scheme: as_str(required(obj, "scheme")?, "scheme")?.to_string(),
        slot: as_usize(required(obj, "slot")?, "slot")?,
        payment: as_f64(required(obj, "payment")?, "payment")?,
        outcome,
    })
}

/// Parses one JSONL trace line back into a [`TraceEvent`].
pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
    let mut parser = Parser::new(line);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing garbage after JSON value");
    }
    let kind = as_str(required(&value, "type")?, "type")?;
    match kind {
        "decision" => Ok(TraceEvent::Decision(decision_from(&value)?)),
        "outage-start" => Ok(TraceEvent::OutageStart {
            slot: as_usize(required(&value, "slot")?, "slot")?,
            cloudlet: as_usize(required(&value, "cloudlet")?, "cloudlet")?,
        }),
        "outage-end" => Ok(TraceEvent::OutageEnd {
            slot: as_usize(required(&value, "slot")?, "slot")?,
            cloudlet: as_usize(required(&value, "cloudlet")?, "cloudlet")?,
        }),
        "instance-kill" => Ok(TraceEvent::InstanceKill {
            slot: as_usize(required(&value, "slot")?, "slot")?,
            cloudlet: as_usize(required(&value, "cloudlet")?, "cloudlet")?,
            request: as_usize(required(&value, "request")?, "request")?,
        }),
        "sla-breach" => Ok(TraceEvent::SlaBreach {
            slot: as_usize(required(&value, "slot")?, "slot")?,
            request: as_usize(required(&value, "request")?, "request")?,
        }),
        "recovery" => {
            let cloudlets_json = match required(&value, "cloudlets")? {
                Json::Arr(items) => items,
                _ => return Err(fail("field 'cloudlets' is not an array")),
            };
            let mut cloudlets = Vec::with_capacity(cloudlets_json.len());
            for c in cloudlets_json {
                cloudlets.push(as_usize(c, "cloudlets[]")?);
            }
            let success = match required(&value, "success")? {
                Json::Bool(b) => *b,
                _ => return Err(fail("field 'success' is not a bool")),
            };
            Ok(TraceEvent::Recovery {
                slot: as_usize(required(&value, "slot")?, "slot")?,
                request: as_usize(required(&value, "request")?, "request")?,
                success,
                cloudlets,
            })
        }
        "domain-outage-start" => {
            let cloudlets_json = match required(&value, "cloudlets")? {
                Json::Arr(items) => items,
                _ => return Err(fail("field 'cloudlets' is not an array")),
            };
            let mut cloudlets = Vec::with_capacity(cloudlets_json.len());
            for c in cloudlets_json {
                cloudlets.push(as_usize(c, "cloudlets[]")?);
            }
            Ok(TraceEvent::DomainOutageStart {
                slot: as_usize(required(&value, "slot")?, "slot")?,
                domain: as_usize(required(&value, "domain")?, "domain")?,
                cloudlets,
            })
        }
        "domain-outage-end" => Ok(TraceEvent::DomainOutageEnd {
            slot: as_usize(required(&value, "slot")?, "slot")?,
            domain: as_usize(required(&value, "domain")?, "domain")?,
        }),
        "cascade" => Ok(TraceEvent::Cascade {
            slot: as_usize(required(&value, "slot")?, "slot")?,
            cloudlet: as_usize(required(&value, "cloudlet")?, "cloudlet")?,
            utilization: as_f64(required(&value, "utilization")?, "utilization")?,
        }),
        "eviction" => Ok(TraceEvent::Eviction {
            slot: as_usize(required(&value, "slot")?, "slot")?,
            request: as_usize(required(&value, "request")?, "request")?,
            density: as_f64(required(&value, "density")?, "density")?,
        }),
        "degraded-enter" => Ok(TraceEvent::DegradedEnter {
            slot: as_usize(required(&value, "slot")?, "slot")?,
        }),
        "degraded-exit" => Ok(TraceEvent::DegradedExit {
            slot: as_usize(required(&value, "slot")?, "slot")?,
        }),
        "audit-violation" => Ok(TraceEvent::AuditViolation {
            slot: as_usize(required(&value, "slot")?, "slot")?,
            invariant: as_str(required(&value, "invariant")?, "invariant")?.to_string(),
            detail: as_str(required(&value, "detail")?, "detail")?.to_string(),
        }),
        "promotion" => Ok(TraceEvent::Promotion {
            epoch: as_usize(required(&value, "epoch")?, "epoch")? as u64,
            seq: as_usize(required(&value, "seq")?, "seq")? as u64,
        }),
        "fenced" => Ok(TraceEvent::Fenced {
            epoch: as_usize(required(&value, "epoch")?, "epoch")? as u64,
            stale_epoch: as_usize(required(&value, "stale_epoch")?, "stale_epoch")? as u64,
        }),
        "repl-catchup" => Ok(TraceEvent::ReplCatchup {
            epoch: as_usize(required(&value, "epoch")?, "epoch")? as u64,
            seq: as_usize(required(&value, "seq")?, "seq")? as u64,
        }),
        other => Err(fail(format!("unknown event type '{other}'"))),
    }
}

/// Parses a whole JSONL document, skipping blank lines.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line).map_err(|e| ParseError {
            message: format!("line {}: {}", i + 1, e.message),
            offset: e.offset,
        })?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_admit_round_trips() {
        let ev = TraceEvent::Decision(DecisionEvent {
            request: 7,
            algorithm: "alg1-onsite".to_string(),
            scheme: "onsite".to_string(),
            slot: 3,
            payment: 4.25,
            outcome: Outcome::Admit {
                dual_cost: 1.5,
                margin: 2.75,
                sites: vec![SitePlacement {
                    cloudlet: 2,
                    instances: 3,
                    dual_cost: 1.5,
                }],
            },
        });
        assert_eq!(parse_line(&to_json(&ev)).unwrap(), ev);
    }

    #[test]
    fn reject_with_null_fields_round_trips() {
        let ev = TraceEvent::Decision(DecisionEvent {
            request: 0,
            algorithm: "alg2-offsite".to_string(),
            scheme: "offsite".to_string(),
            slot: 0,
            payment: 0.5,
            outcome: Outcome::Reject {
                reason: RejectReason::ReliabilityInfeasible,
                dual_cost: None,
                margin: Some(-0.25),
            },
        });
        assert_eq!(parse_line(&to_json(&ev)).unwrap(), ev);
    }

    #[test]
    fn string_escapes_round_trip() {
        let ev = TraceEvent::Decision(DecisionEvent {
            request: 1,
            algorithm: "weird\"name\\with\ncontrol\u{1}".to_string(),
            scheme: "onsite".to_string(),
            slot: 1,
            payment: 1.0,
            outcome: Outcome::Reject {
                reason: RejectReason::UnknownVnf,
                dual_cost: None,
                margin: None,
            },
        });
        assert_eq!(parse_line(&to_json(&ev)).unwrap(), ev);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        let ev = TraceEvent::Decision(DecisionEvent {
            request: 1,
            algorithm: "a".to_string(),
            scheme: "onsite".to_string(),
            slot: 1,
            payment: f64::INFINITY,
            outcome: Outcome::Reject {
                reason: RejectReason::PaymentTest,
                dual_cost: None,
                margin: None,
            },
        });
        let line = to_json(&ev);
        assert!(line.contains("\"payment\":null"));
        match parse_line(&line).unwrap() {
            TraceEvent::Decision(d) => assert!(d.payment.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_lifecycle_events_round_trip() {
        let events = vec![
            TraceEvent::DomainOutageStart {
                slot: 4,
                domain: 1,
                cloudlets: vec![0, 2, 5],
            },
            TraceEvent::DomainOutageEnd { slot: 9, domain: 1 },
            TraceEvent::Cascade {
                slot: 5,
                cloudlet: 3,
                utilization: 0.9375,
            },
            TraceEvent::Eviction {
                slot: 6,
                request: 12,
                density: 0.125,
            },
            TraceEvent::DegradedEnter { slot: 4 },
            TraceEvent::DegradedExit { slot: 10 },
            TraceEvent::AuditViolation {
                slot: 7,
                invariant: "ledger-balance".to_string(),
                detail: "cloudlet 2 slot 7: used 5 expected 4".to_string(),
            },
        ];
        for ev in events {
            let line = to_json(&ev);
            assert_eq!(parse_line(&line).unwrap(), ev, "line: {line}");
        }
        assert_eq!(
            TraceEvent::Eviction {
                slot: 0,
                request: 0,
                density: 0.0
            }
            .request(),
            Some(0)
        );
        assert_eq!(
            TraceEvent::DegradedEnter { slot: 0 }.kind(),
            "degraded-enter"
        );
    }

    #[test]
    fn replication_events_round_trip() {
        let events = vec![
            TraceEvent::Promotion { epoch: 2, seq: 417 },
            TraceEvent::Fenced {
                epoch: 3,
                stale_epoch: 1,
            },
            TraceEvent::ReplCatchup { epoch: 1, seq: 96 },
        ];
        for ev in events {
            let line = to_json(&ev);
            assert_eq!(parse_line(&line).unwrap(), ev, "line: {line}");
            assert_eq!(parse_line(&line).unwrap().request(), None);
        }
        assert_eq!(
            TraceEvent::Promotion { epoch: 2, seq: 0 }.kind(),
            "promotion"
        );
        assert_eq!(
            TraceEvent::Fenced {
                epoch: 2,
                stale_epoch: 1
            }
            .kind(),
            "fenced"
        );
        assert_eq!(
            TraceEvent::ReplCatchup { epoch: 1, seq: 0 }.kind(),
            "repl-catchup"
        );
    }

    #[test]
    fn json_value_encode_parse_round_trips() {
        let v = JsonValue::Obj(vec![
            ("type".to_string(), JsonValue::Str("snapshot".to_string())),
            ("v".to_string(), JsonValue::Num(1.0)),
            ("ok".to_string(), JsonValue::Bool(true)),
            ("none".to_string(), JsonValue::Null),
            (
                "grid".to_string(),
                JsonValue::Arr(vec![
                    JsonValue::Num(0.1 + 0.2), // not exactly 0.3 — bit pattern must survive
                    JsonValue::Num(-1.5e-300),
                    JsonValue::Num(7.0),
                ]),
            ),
            (
                "name".to_string(),
                JsonValue::Str("quo\"te\\and\ncontrol\u{1}".to_string()),
            ),
        ]);
        let text = v.encode();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
        // Byte-exact floats through the round trip.
        let grid = back.get("grid").unwrap().as_array().unwrap();
        assert_eq!(
            grid[0].as_f64().unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        assert_eq!(
            grid[1].as_f64().unwrap().to_bits(),
            (-1.5e-300f64).to_bits()
        );
        // Accessors.
        assert_eq!(back.get("v").unwrap().as_usize(), Some(1));
        assert_eq!(back.get("ok").unwrap().as_bool(), Some(true));
        assert!(back.get("none").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(back.get("type").unwrap().as_str(), Some("snapshot"));
        assert_eq!(back.get("missing"), None);
        assert_eq!(JsonValue::Num(1.5).as_usize(), None);
        assert_eq!(JsonValue::Num(f64::NAN).encode(), "null");
        assert!(parse_value("{} extra").is_err());
        assert!(parse_value("[1,").is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("{\"type\":\"decision\"").is_err());
        assert!(parse_line("{\"type\":\"mystery\"}").is_err());
        assert!(parse_line("{} trailing").is_err());
        assert!(parse_line("{\"no_type\":1}").is_err());
    }

    #[test]
    fn parse_trace_skips_blank_lines_and_reports_line_numbers() {
        let doc = "\n{\"type\":\"sla-breach\",\"slot\":1,\"request\":2}\n\nnot json\n";
        let err = parse_trace(doc).unwrap_err();
        assert!(err.message.starts_with("line 4:"), "{err}");
        let ok = parse_trace("{\"type\":\"outage-start\",\"slot\":0,\"cloudlet\":1}\n").unwrap();
        assert_eq!(
            ok,
            vec![TraceEvent::OutageStart {
                slot: 0,
                cloudlet: 1
            }]
        );
    }
}
