//! Offline vendored `ChaCha8Rng`: a genuine ChaCha stream cipher with
//! 8 rounds used as a deterministic random number generator, exposing
//! the same type name and trait surface (`rand::RngCore`,
//! `rand::SeedableRng`) as the upstream `rand_chacha` crate.
//!
//! Output is high quality and fully deterministic per seed, but the
//! exact stream is not guaranteed to match upstream `rand_chacha`
//! word-for-word; nothing in this workspace depends on that.

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher with 8 rounds, used as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects one of 2^64 independent keystreams for the current key by
    /// setting the ChaCha nonce words, restarting that stream from its
    /// first block — same surface as upstream `rand_chacha`'s
    /// `set_stream`. Distinct streams of one seed are as independent as
    /// distinct seeds, which is what per-task deterministic parallelism
    /// wants: `seed` identifies the experiment, `stream` the task.
    pub fn set_stream(&mut self, stream: u64) {
        self.state[14] = (stream & 0xffff_ffff) as u32;
        self.state[15] = (stream >> 32) as u32;
        self.state[12] = 0;
        self.state[13] = 0;
        self.index = 16;
    }

    /// Generates the next keystream block and advances the 64-bit counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round = a column round plus a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        self.index = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams for distinct seeds look identical");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.set_stream(1);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "distinct streams look identical");
        // Re-selecting a stream restarts it from the same point.
        let mut c = ChaCha8Rng::seed_from_u64(7);
        c.set_stream(1);
        let mut a2 = ChaCha8Rng::seed_from_u64(7);
        a2.set_stream(1);
        for _ in 0..100 {
            assert_eq!(c.next_u64(), a2.next_u64());
        }
        // Stream 0 is the default stream.
        let mut d = ChaCha8Rng::seed_from_u64(7);
        let mut e = ChaCha8Rng::seed_from_u64(7);
        e.set_stream(0);
        for _ in 0..100 {
            assert_eq!(d.next_u64(), e.next_u64());
        }
    }

    #[test]
    fn counter_spans_blocks() {
        // More than 16 words forces at least two refills with distinct output.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
