//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` items the crates actually use are reimplemented here
//! behind the same names and signatures: [`RngCore`], [`Rng`] (with
//! `gen`, `gen_bool`, `gen_range`), [`SeedableRng`] (with
//! `seed_from_u64`), and [`seq::SliceRandom`].
//!
//! The numeric streams are *not* bit-compatible with upstream `rand`;
//! every consumer in this repository only relies on determinism for a
//! fixed seed and on sound uniform sampling, both of which hold here.

pub mod seq;

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their "standard" domain
/// (the full integer range; `[0, 1)` for floats; fair coin for `bool`).
pub trait SampleStandard: Sized {
    /// Draws one standard sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges a value of type `T` can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is < span / 2^64 — negligible for the spans
                // used in simulations and tests.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = SampleStandard::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u: $t = SampleStandard::sample_standard(rng);
                start + (end - start) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard sample of type `T` (see [`SampleStandard`]).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.gen::<f64>() < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// distinct `u64` seeds give well-separated full seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (Steele, Lea & Flood 2014).
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixer, good enough for API tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn gen_bool_rejects_bad_probability() {
        Counter(0).gen_bool(1.5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
