//! Input strategies: ranges of primitive numeric types.

use rand::{Rng, RngCore};

/// A source of sampled values for one `proptest!` argument.
pub trait Strategy {
    /// The sampled value type.
    type Value;

    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
