//! Offline vendored subset of the `proptest` API.
//!
//! Supports the forms this workspace actually uses:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     #[test]
//!     fn my_property(x in 0u64..100, y in 0.0f64..1.0) {
//!         prop_assert!(x < 100);
//!         prop_assert_eq!(y.floor(), 0.0);
//!     }
//! }
//! ```
//!
//! Each test runs `cases` deterministic iterations. Inputs are sampled
//! from the range strategies with an internal SplitMix64 generator
//! seeded from the test's name, so runs are reproducible; there is no
//! shrinking — a failing case reports its sampled inputs instead.

// The macro-generated test shims intentionally use patterns clippy
// dislikes (negated `$cond`, `#[test]` items nested in functions).
#![allow(unnameable_test_items)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything a `proptest!` test file needs in scope.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The property-test entry macro. Expands each `fn name(arg in strategy, ..)`
/// item into a plain `#[test]` function that loops over sampled cases.
#[macro_export]
macro_rules! proptest {
    // Internal: config captured, expand each test fn.
    (@expand ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::name_seed(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&::std::format!("{:?}", $arg));
                            s.push_str(", ");
                        )+
                        s.truncate(s.len().saturating_sub(2));
                        s
                    };
                    let outcome = (move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{} with inputs [{}]: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            inputs,
                            e
                        );
                    }
                }
            }
        )*
    };
    // Entry with an inner config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    // Entry with the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(
            @expand ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Skips the current case when `cond` does not hold (upstream proptest
/// resamples; here the case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..10, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn trailing_comma_accepted(
            a in 0u64..5,
            b in 0u64..5,
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(a.min(4), a);
            prop_assert_ne!(a + 10, b);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(v in 0.0f64..1.0) {
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "message: {msg}");
        assert!(msg.contains("x ="), "message: {msg}");
    }

    #[test]
    fn same_name_same_samples() {
        let seed = crate::test_runner::name_seed("stable");
        let mut a = crate::test_runner::TestRng::new(seed);
        let mut b = crate::test_runner::TestRng::new(seed);
        for _ in 0..100 {
            let x: u64 = Strategy::sample(&(0u64..1000), &mut a);
            let y: u64 = Strategy::sample(&(0u64..1000), &mut b);
            assert_eq!(x, y);
        }
    }
}
