//! Case configuration, failure type, and the deterministic sampler RNG
//! backing the `proptest!` macro.

use core::fmt;

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a hash of a test name — a stable per-test base seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64: a tiny, fast, deterministic generator for input sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
