//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Provides the types and macros the workspace's `harness = false`
//! benches use — `Criterion`, `benchmark_group`/`sample_size`/
//! `bench_function`/`bench_with_input`/`finish`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple warmup-plus-samples
//! mean (no statistics, plots, or comparison with saved baselines);
//! results print one line per benchmark.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Runs closures repeatedly and records elapsed time.
pub struct Bencher {
    iters_per_sample: u64,
    samples: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: one call, also used to size the sampling loop so each
        // sample runs long enough to be measurable but the whole
        // benchmark stays fast.
        let start = Instant::now();
        black_box(routine());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        let target_sample_ns = 5_000_000.0; // ~5 ms per sample
        self.iters_per_sample = ((target_sample_ns / once_ns).ceil() as u64).clamp(1, 10_000);

        let mut total_ns = 0.0;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
        }
        self.mean_ns = total_ns / (self.samples * self.iters_per_sample) as f64;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: samples.max(1),
        mean_ns: 0.0,
    };
    f(&mut bencher);
    println!("{label:<60} {:>12}/iter", format_ns(bencher.mean_ns));
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("  {name}"), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("  {id}"), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: function name plus parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("standalone", |b| b.iter(|| calls += 1));
        assert!(calls > 0);

        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 42), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("alg", 7).to_string(), "alg/7");
    }
}
