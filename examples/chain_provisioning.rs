//! Service-function-chain extension: schedule chains of VNFs (e.g.
//! firewall → IDS → load balancer) with one end-to-end reliability
//! requirement. The replica allocator finds the cheapest per-stage backup
//! counts; the chain primal-dual scheduler then admits payment-aware.
//!
//! Run with: `cargo run --example chain_provisioning`

use mec_topology::{NetworkBuilder, Reliability};
use mec_workload::{Horizon, VnfCatalog, VnfTypeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::chain::{
    alloc::allocate_replicas, run_chain_online, ChainGreedy, ChainPrimalDual, ChainRequest,
    ChainRequestId,
};
use vnfrel::ProblemInstance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = NetworkBuilder::new();
    let mut prev = None;
    for (i, rel) in [0.9999, 0.999, 0.995].iter().enumerate() {
        let ap = b.add_ap(format!("edge-{i}"));
        if let Some(p) = prev {
            b.add_link(p, ap, 1.0)?;
        }
        prev = Some(ap);
        b.add_cloudlet(ap, 12, Reliability::new(*rel)?)?;
    }
    let instance = ProblemInstance::new(b.build()?, VnfCatalog::standard(), Horizon::new(24))?;

    // Show the allocator on one concrete chain: Firewall → IDS → LB.
    let stages: Vec<_> = [0usize, 2, 3]
        .iter()
        .map(|&s| {
            let v = instance.catalog().get(VnfTypeId(s)).unwrap();
            (v.reliability(), v.compute())
        })
        .collect();
    let cloudlet = instance
        .network()
        .cloudlet(mec_topology::CloudletId(0))
        .unwrap();
    let alloc = allocate_replicas(&stages, cloudlet.reliability(), Reliability::new(0.98)?)
        .expect("feasible");
    println!(
        "Firewall→IDS→LB at r_c={} for R=0.98: replicas {:?}, {} units/slot, availability {:.5}",
        cloudlet.reliability(),
        alloc.replicas,
        alloc.total_compute,
        alloc.availability
    );

    // A stream of random lightweight chains (NAT / FlowMonitor /
    // ProxyCache — the kinds of per-flow middleboxes that get chained in
    // practice) with a wide payment spread: the regime where the chain
    // primal-dual's selectivity beats greedy (heavier chains push the
    // Eq.-34 prices into over-rejection; see EXPERIMENTS.md).
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let light_stages = [1usize, 5, 8];
    let horizon = instance.horizon();
    let requests: Vec<ChainRequest> = (0..400)
        .map(|i| {
            let len = rng.gen_range(2..=3);
            let stages: Vec<VnfTypeId> = (0..len)
                .map(|_| VnfTypeId(light_stages[rng.gen_range(0..light_stages.len())]))
                .collect();
            let arrival = rng.gen_range(0..horizon.len() - 4);
            let duration = rng.gen_range(1..=4);
            let rate: f64 = if i % 4 == 0 {
                rng.gen_range(8.0..10.0)
            } else {
                rng.gen_range(1.0..3.0)
            };
            ChainRequest::new(
                ChainRequestId(i),
                stages,
                Reliability::new(rng.gen_range(0.9..0.95)).unwrap(),
                arrival,
                duration,
                rate * duration as f64 * len as f64,
                horizon,
            )
            .unwrap()
        })
        .collect();

    let mut pd = ChainPrimalDual::new(&instance);
    let spd = run_chain_online(&mut pd, &requests)?;
    println!("chain primal-dual: {spd}");
    assert_eq!(pd.ledger().max_overflow(), 0.0);

    let mut greedy = ChainGreedy::new(&instance);
    let sg = run_chain_online(&mut greedy, &requests)?;
    println!("chain greedy:      {sg}");
    assert_eq!(greedy.ledger().max_overflow(), 0.0);

    println!(
        "primal-dual vs greedy: {:+.1}%",
        100.0 * (spd.revenue() / sg.revenue() - 1.0)
    );
    Ok(())
}
