//! Off-site scheme: geographic redundancy lets requests demand *more*
//! reliability than any single cloudlet offers — the on-site scheme
//! admits nothing here, while Algorithm 2 and the off-site greedy serve
//! the same users by replicating across independent cloudlets.
//!
//! Run with: `cargo run --example offsite_admission`

use mec_sim::Simulation;
use mec_topology::{NetworkBuilder, Reliability};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::offline::{self, OfflineConfig};
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::{Placement, ProblemInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six cloudlets, none more reliable than 0.97 — yet requests will ask
    // for up to 0.99.
    let mut b = NetworkBuilder::new();
    let mut prev = None;
    for (i, rel) in [0.97, 0.96, 0.95, 0.94, 0.93, 0.92].iter().enumerate() {
        let ap = b.add_ap(format!("edge-{i}"));
        if let Some(p) = prev {
            b.add_link(p, ap, 1.0)?;
        }
        prev = Some(ap);
        b.add_cloudlet(ap, 15, Reliability::new(*rel)?)?;
    }
    let instance = ProblemInstance::new(b.build()?, VnfCatalog::standard(), Horizon::new(24))?;

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let requests = RequestGenerator::new(instance.horizon())
        .reliability_band(0.975, 0.995)? // above every single cloudlet!
        .payment_rate_band(1.0, 10.0)?
        .generate(400, instance.catalog(), &mut rng)?;

    let sim = Simulation::new(&instance, &requests)?;

    // The on-site scheme is helpless here: every requirement exceeds
    // every cloudlet's own reliability, so no replica count can help.
    let mut alg1 =
        vnfrel::onsite::OnsitePrimalDual::new(&instance, vnfrel::onsite::CapacityPolicy::Enforce)?;
    let r1 = sim.run(&mut alg1)?;
    println!(
        "on-site (any algorithm): admitted {}/{} — the cloudlet reliability ceiling bites",
        r1.metrics.admitted,
        requests.len()
    );
    assert_eq!(r1.metrics.admitted, 0);

    let mut alg2 = OffsitePrimalDual::new(&instance);
    let r2 = sim.run(&mut alg2)?;
    println!("{}", r2.metrics);
    assert!(r2.validation.is_feasible());

    let mut greedy = OffsiteGreedy::new(&instance);
    let rg = sim.run(&mut greedy)?;
    println!("{}", rg.metrics);

    // How many sites did admitted requests need?
    let mut by_count = std::collections::BTreeMap::<usize, usize>::new();
    for (_, p) in r2.schedule.iter() {
        if let Some(Placement::OffSite { cloudlets }) = p {
            *by_count.entry(cloudlets.len()).or_default() += 1;
        }
    }
    println!("\ninstances per admitted request (algorithm 2):");
    for (sites, count) in by_count {
        println!("  {sites} site(s): {count} requests");
    }

    let off = offline::solve(
        &instance,
        &requests,
        &OfflineConfig {
            lp_only: true,
            ..OfflineConfig::default()
        },
    )?;
    println!(
        "\nLP upper bound on the offline optimum: {:.2} (alg2 reaches {:.1}%)",
        off.upper_bound,
        100.0 * r2.metrics.revenue / off.upper_bound
    );
    Ok(())
}
