//! Quickstart: build a small MEC network, generate a workload, and compare
//! the paper's Algorithm 1 against the greedy baseline under the on-site
//! backup scheme.
//!
//! Run with: `cargo run --example quickstart`

use mec_sim::Simulation;
use mec_topology::{NetworkBuilder, Reliability};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::ProblemInstance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-AP edge network with three cloudlets of varying reliability.
    let mut b = NetworkBuilder::new();
    let aps: Vec<_> = (0..4).map(|i| b.add_ap(format!("ap-{i}"))).collect();
    b.add_link(aps[0], aps[1], 1.0)?;
    b.add_link(aps[1], aps[2], 1.0)?;
    b.add_link(aps[2], aps[3], 1.0)?;
    b.add_link(aps[3], aps[0], 1.0)?;
    // Small capacities: with 300 requests the network is genuinely
    // scarce, which is where payment-aware admission pays off.
    b.add_cloudlet(aps[0], 12, Reliability::new(0.9999)?)?;
    b.add_cloudlet(aps[1], 10, Reliability::new(0.999)?)?;
    b.add_cloudlet(aps[3], 10, Reliability::new(0.995)?)?;
    let network = b.build()?;
    println!("{network}");

    let instance = ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(48))?;

    // 300 requests with reliability requirements in [0.9, 0.98].
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let requests = RequestGenerator::new(instance.horizon())
        .reliability_band(0.9, 0.95)?
        .payment_rate_band(1.0, 10.0)?
        .generate(300, instance.catalog(), &mut rng)?;
    println!(
        "generated {} requests over {}",
        requests.len(),
        instance.horizon()
    );

    let sim = Simulation::new(&instance, &requests)?;

    let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce)?;
    let r1 = sim.run(&mut alg1)?;
    println!("{}", r1.metrics);
    assert!(r1.validation.is_feasible());

    let mut greedy = OnsiteGreedy::new(&instance);
    let rg = sim.run(&mut greedy)?;
    println!("{}", rg.metrics);
    assert!(rg.validation.is_feasible());

    println!(
        "algorithm 1 collects {:.1}% of the dual upper bound {:.2}",
        100.0 * r1.metrics.revenue / alg1.dual_objective(),
        alg1.dual_objective()
    );
    println!(
        "algorithm 1 vs greedy: {:+.1}%",
        100.0 * (r1.metrics.revenue / rg.metrics.revenue - 1.0)
    );
    Ok(())
}
