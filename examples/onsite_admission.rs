//! On-site scheme on a real topology: Algorithm 1 vs greedy vs the offline
//! ILP optimum on the Abilene (Internet2) backbone, plus the theoretical
//! guarantees (competitive ratio, violation bound ξ) for this workload.
//!
//! Run with: `cargo run --example onsite_admission`

use mec_sim::Simulation;
use mec_topology::generators::CloudletPlacement;
use mec_topology::zoo;
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::bounds::OnsiteBounds;
use vnfrel::onsite::offline::{self, OfflineConfig};
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::ProblemInstance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let placement = CloudletPlacement {
        fraction: 0.5,
        capacity: (8, 12),
        reliability: (0.99, 0.9999),
    };
    let network = zoo::abilene().into_network(&placement, &mut rng)?;
    println!("Abilene: {network}");

    let instance = ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(24))?;
    let requests = RequestGenerator::new(instance.horizon())
        .reliability_band(0.9, 0.95)?
        .payment_rate_band(1.0, 10.0)?
        .generate(400, instance.catalog(), &mut rng)?;

    // Theoretical guarantees for this concrete workload.
    let bounds = OnsiteBounds::compute(&instance, &requests)?;
    println!(
        "competitive ratio 1 + a_max = {:.1}; violation bound ξ = {:.1} units (cap_min {})",
        bounds.competitive_ratio(),
        bounds.xi(),
        bounds.cap_min
    );

    let sim = Simulation::new(&instance, &requests)?;

    let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce)?;
    let r1 = sim.run(&mut alg1)?;
    println!("{}", r1.metrics);

    let mut greedy = OnsiteGreedy::new(&instance);
    let rg = sim.run(&mut greedy)?;
    println!("{}", rg.metrics);

    // Offline optimum (the paper used CPLEX here). At this size we take
    // the LP-relaxation upper bound; its integrality gap is small for
    // this packing structure (see EXPERIMENTS.md).
    let off = offline::solve(
        &instance,
        &requests,
        &OfflineConfig {
            lp_only: true,
            ..OfflineConfig::default()
        },
    )?;
    println!("offline optimum (LP bound): {:.2}", off.upper_bound);

    println!(
        "\nalg1/opt = {:.3}, greedy/opt = {:.3} (theorem guarantees alg1 ≥ opt/{:.1})",
        r1.metrics.revenue / off.revenue(),
        rg.metrics.revenue / off.revenue(),
        bounds.competitive_ratio()
    );
    Ok(())
}
