//! Failure injection, two ways.
//!
//! Part 1 — **static Monte-Carlo**: verify that the reliability the
//! schedulers *promise* is the reliability users actually *receive* when
//! cloudlets and VNF instances fail at their modeled rates.
//!
//! Part 2 — **dynamic fault-and-recovery walkthrough**: replay one
//! seeded outage trace (cloudlet crashes/repairs plus instance deaths)
//! through `Simulation::run_with_failures`, first with no recovery and
//! then with scheme-matching re-placement, and compare the SLA ledgers.
//!
//! Run with: `cargo run --example failure_injection`

use mec_sim::{failure, FailureConfig, FailureProcess, RecoveryPolicy, Simulation};
use mec_topology::generators::{self, CloudletPlacement};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::ProblemInstance;

const TRIALS: usize = 50_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let placement = CloudletPlacement {
        fraction: 0.8,
        capacity: (30, 50),
        reliability: (0.98, 0.9999),
    };
    let network = generators::barabasi_albert(12, 2, &placement, &mut rng)?;
    let instance = ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(24))?;
    let requests = RequestGenerator::new(instance.horizon())
        .reliability_band(0.9, 0.97)?
        .generate(150, instance.catalog(), &mut rng)?;
    let sim = Simulation::new(&instance, &requests)?;

    for scheme in ["on-site", "off-site"] {
        let (schedule, name) = match scheme {
            "on-site" => {
                let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce)?;
                (sim.run(&mut alg)?.schedule, "algorithm 1")
            }
            _ => {
                let mut alg = OffsitePrimalDual::new(&instance);
                (sim.run(&mut alg)?.schedule, "algorithm 2")
            }
        };
        let report = failure::inject_failures(&instance, &requests, &schedule, TRIALS, &mut rng)?;
        let worst = report.worst_margin().unwrap_or(f64::NAN);
        let violations = report.statistical_violations(3.0);
        println!(
            "{scheme} ({name}): {} admitted, {} trials, worst margin {:+.4}, statistical violations: {}",
            report.requests.len(),
            report.trials,
            worst,
            violations.len()
        );
        // Show the three tightest requests.
        let mut sorted = report.requests.clone();
        sorted.sort_by(|a, b| a.margin().partial_cmp(&b.margin()).expect("finite"));
        for r in sorted.iter().take(3) {
            println!(
                "  {}: required {:.4}, measured {:.4} (±{:.4})",
                r.request,
                r.required,
                r.measured,
                r.standard_error()
            );
        }
        assert!(
            violations.is_empty(),
            "{scheme}: delivered availability below requirement"
        );
    }
    println!("\nall admitted requests meet their reliability requirements empirically");

    // ── Part 2: dynamic outages with online recovery ────────────────────
    //
    // The static check above assumes placements persist for a request's
    // whole lifetime. Now cloudlets actually go down mid-run: generate a
    // schedule-independent outage trace from the topology alone, then
    // replay the *same* trace with and without recovery.
    let config = FailureConfig {
        cloudlet_mttf: 8.0,
        cloudlet_mttr: 2.0,
        instance_kill_rate: 0.05,
    };
    let trace = FailureProcess::generate(
        instance.network(),
        &config,
        instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(7),
    )?;
    println!(
        "\ndynamic outage trace: {} events over {} slots (mttf {}, mttr {}, kill rate {})",
        trace.total_events(),
        instance.horizon().len(),
        config.cloudlet_mttf,
        config.cloudlet_mttr,
        config.instance_kill_rate
    );

    let mut reports = Vec::new();
    for policy in [RecoveryPolicy::None, RecoveryPolicy::SchemeMatching] {
        let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce)?;
        let report = sim.run_with_failures(&mut alg, &trace, policy)?;
        println!(
            "policy {policy}: {} | recovered {}/{} failures, mean repair latency {}",
            report.sla,
            report.sla.total_recoveries(),
            report.sla.total_failures(),
            report
                .sla
                .mean_repair_latency()
                .map_or("n/a".into(), |l| format!("{l:.2} slots")),
        );
        reports.push(report);
    }
    let (none, matching) = (&reports[0].sla, &reports[1].sla);
    assert!(
        matching.violated_request_slots() <= none.violated_request_slots(),
        "recovery made the SLA ledger worse"
    );
    println!(
        "recovery cut violated request-slots {} -> {} and refunds {:.2} -> {:.2}",
        none.violated_request_slots(),
        matching.violated_request_slots(),
        none.revenue_refunded(),
        matching.revenue_refunded()
    );
    Ok(())
}
