//! Monte-Carlo failure injection: verify that the reliability the
//! schedulers *promise* is the reliability users actually *receive* when
//! cloudlets and VNF instances fail at their modeled rates.
//!
//! Run with: `cargo run --example failure_injection`

use mec_sim::{failure, Simulation};
use mec_topology::generators::{self, CloudletPlacement};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::ProblemInstance;

const TRIALS: usize = 50_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let placement = CloudletPlacement {
        fraction: 0.8,
        capacity: (30, 50),
        reliability: (0.98, 0.9999),
    };
    let network = generators::barabasi_albert(12, 2, &placement, &mut rng)?;
    let instance = ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(24))?;
    let requests = RequestGenerator::new(instance.horizon())
        .reliability_band(0.9, 0.97)?
        .generate(150, instance.catalog(), &mut rng)?;
    let sim = Simulation::new(&instance, &requests)?;

    for scheme in ["on-site", "off-site"] {
        let (schedule, name) = match scheme {
            "on-site" => {
                let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce)?;
                (sim.run(&mut alg)?.schedule, "algorithm 1")
            }
            _ => {
                let mut alg = OffsitePrimalDual::new(&instance);
                (sim.run(&mut alg)?.schedule, "algorithm 2")
            }
        };
        let report = failure::inject_failures(&instance, &requests, &schedule, TRIALS, &mut rng)?;
        let worst = report.worst_margin().unwrap_or(f64::NAN);
        let violations = report.statistical_violations(3.0);
        println!(
            "{scheme} ({name}): {} admitted, {} trials, worst margin {:+.4}, statistical violations: {}",
            report.requests.len(),
            report.trials,
            worst,
            violations.len()
        );
        // Show the three tightest requests.
        let mut sorted = report.requests.clone();
        sorted.sort_by(|a, b| a.margin().partial_cmp(&b.margin()).expect("finite"));
        for r in sorted.iter().take(3) {
            println!(
                "  {}: required {:.4}, measured {:.4} (±{:.4})",
                r.request,
                r.required,
                r.measured,
                r.standard_error()
            );
        }
        assert!(
            violations.is_empty(),
            "{scheme}: delivered availability below requirement"
        );
    }
    println!("\nall admitted requests meet their reliability requirements empirically");
    Ok(())
}
