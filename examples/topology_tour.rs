//! Tour of the embedded Internet Topology Zoo networks: structure stats
//! and a quick on-site scheduling run on each, showing how topology size
//! and cloudlet placement shift revenue.
//!
//! Run with: `cargo run --example topology_tour`

use mec_sim::Simulation;
use mec_topology::generators::CloudletPlacement;
use mec_topology::zoo;
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::ProblemInstance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let placement = CloudletPlacement {
        fraction: 0.4,
        capacity: (8, 12),
        reliability: (0.99, 0.9999),
    };
    println!(
        "{:<10} {:>5} {:>6} {:>9} {:>9} {:>12} {:>12}",
        "topology", "APs", "links", "cloudlets", "diameter", "alg1", "greedy"
    );
    for topo in zoo::all() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let network = topo.into_network(&placement, &mut rng)?;
        let diameter = network.diameter_hops().expect("zoo graphs are connected");
        let instance = ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(24))?;
        let requests = RequestGenerator::new(instance.horizon())
            .reliability_band(0.9, 0.95)?
            .payment_rate_band(1.0, 10.0)?
            .generate(instance.cloudlet_count() * 60, instance.catalog(), &mut rng)?;
        let sim = Simulation::new(&instance, &requests)?;

        let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce)?;
        let r1 = sim.run(&mut alg1)?;
        let mut greedy = OnsiteGreedy::new(&instance);
        let rg = sim.run(&mut greedy)?;
        println!(
            "{:<10} {:>5} {:>6} {:>9} {:>9} {:>12.1} {:>12.1}",
            topo.name(),
            instance.network().ap_count(),
            instance.network().link_count(),
            instance.cloudlet_count(),
            diameter,
            r1.metrics.revenue,
            rg.metrics.revenue
        );
    }
    Ok(())
}
